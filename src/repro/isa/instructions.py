"""SRISC opcode table and the :class:`Instruction` record.

Every opcode belongs to exactly one *instruction class*.  The classes are
the categories of the paper's instruction-mix characterization (Section
3.1.2): integer arithmetic, integer multiply, integer divide, fp
arithmetic, fp multiply, fp divide, load, store, and branch — plus jumps
and a sentinel class for ``halt``.
"""

from repro.isa.registers import REG_RA, reg_name


class IClass:
    """Instruction-class codes (small ints for fast dispatch)."""

    IALU = 0
    IMUL = 1
    IDIV = 2
    FALU = 3
    FMUL = 4
    FDIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    JUMP = 9
    OTHER = 10

    COUNT = 11

    #: Classes whose instructions access data memory.
    MEMORY = (6, 7)


ICLASS_NAMES = (
    "ialu",
    "imul",
    "idiv",
    "falu",
    "fmul",
    "fdiv",
    "load",
    "store",
    "branch",
    "jump",
    "other",
)


class OpcodeSpec:
    """Static description of one opcode: its class and assembly format."""

    __slots__ = ("name", "iclass", "fmt")

    def __init__(self, name, iclass, fmt):
        self.name = name
        self.iclass = iclass
        self.fmt = fmt

    def __repr__(self):
        return f"OpcodeSpec({self.name!r}, {ICLASS_NAMES[self.iclass]}, {self.fmt!r})"


def _specs():
    table = {}

    def add(fmt, iclass, *names):
        for name in names:
            table[name] = OpcodeSpec(name, iclass, fmt)

    # Integer register-register and register-immediate arithmetic.
    add("r3", IClass.IALU, "add", "sub", "and", "or", "xor", "nor",
        "sll", "srl", "sra", "slt", "sltu")
    add("r2i", IClass.IALU, "addi", "andi", "ori", "xori",
        "slli", "srli", "srai", "slti", "sltiu")
    add("ri", IClass.IALU, "lui")
    add("r3", IClass.IMUL, "mul", "mulh")
    add("r3", IClass.IDIV, "div", "divu", "rem", "remu")

    # Floating point.
    add("f3", IClass.FALU, "fadd", "fsub", "fmin", "fmax")
    add("f2", IClass.FALU, "fneg", "fabs", "fmv")
    add("fcmp", IClass.FALU, "feq", "flt", "fle")
    add("fcvt_wf", IClass.FALU, "fcvtws")
    add("fcvt_fw", IClass.FALU, "fcvtsw")
    add("fli", IClass.FALU, "fli")
    add("f3", IClass.FMUL, "fmul")
    add("f3", IClass.FDIV, "fdiv")
    add("f2", IClass.FDIV, "fsqrt")

    # Memory.
    add("load", IClass.LOAD, "lw", "lb", "lbu")
    add("fload", IClass.LOAD, "flw")
    add("store", IClass.STORE, "sw", "sb")
    add("fstore", IClass.STORE, "fsw")

    # Control flow.
    add("br", IClass.BRANCH, "beq", "bne", "blt", "bge", "bltu", "bgeu")
    add("j", IClass.JUMP, "j")
    add("jal", IClass.JUMP, "jal")
    add("jr", IClass.JUMP, "jr")
    add("jalr", IClass.JUMP, "jalr")

    add("none", IClass.OTHER, "halt")
    return table


#: Opcode name -> :class:`OpcodeSpec` for the full instruction set.
OPCODES = _specs()


class Instruction:
    """One static SRISC instruction.

    Operand fields follow a single convention so consumers never need to
    dispatch on format:

    * ``rd``  — flat index of the destination register, or ``None``;
    * ``srcs`` — tuple of flat indices of all source registers;
    * ``imm`` — immediate / memory offset (``float`` only for ``fli``);
    * ``target`` — resolved instruction index for branches and direct
      jumps, ``None`` otherwise.

    ``rs1``/``rs2`` keep the raw format roles (base register / second
    operand) for the functional simulator's semantics.
    """

    __slots__ = ("opcode", "iclass", "rd", "rs1", "rs2", "imm", "target",
                 "srcs", "is_mem", "is_cond_branch", "is_ctrl")

    def __init__(self, opcode, rd=None, rs1=None, rs2=None, imm=None,
                 target=None):
        spec = OPCODES.get(opcode)
        if spec is None:
            raise ValueError(f"unknown opcode: {opcode!r}")
        self.opcode = opcode
        self.iclass = spec.iclass
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        srcs = []
        if rs1 is not None:
            srcs.append(rs1)
        if rs2 is not None:
            srcs.append(rs2)
        self.srcs = tuple(srcs)
        self.is_mem = self.iclass in IClass.MEMORY
        self.is_cond_branch = self.iclass == IClass.BRANCH
        self.is_ctrl = self.iclass in (IClass.BRANCH, IClass.JUMP)

    def render(self, index_to_label=None):
        """Render as assembly text.

        ``index_to_label`` maps instruction indices to label names for
        branch/jump targets; raw indices are printed when absent.
        """
        op = self.opcode
        spec = OPCODES[op]
        fmt = spec.fmt

        def tgt():
            if self.target is None:
                return "?"
            if index_to_label and self.target in index_to_label:
                return index_to_label[self.target]
            return f"@{self.target}"

        if fmt in ("r3", "f3"):
            return f"{op} {reg_name(self.rd)}, {reg_name(self.rs1)}, {reg_name(self.rs2)}"
        if fmt == "r2i":
            return f"{op} {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        if fmt == "ri":
            return f"{op} {reg_name(self.rd)}, {self.imm}"
        if fmt in ("f2", "fcvt_wf", "fcvt_fw"):
            return f"{op} {reg_name(self.rd)}, {reg_name(self.rs1)}"
        if fmt == "fcmp":
            return f"{op} {reg_name(self.rd)}, {reg_name(self.rs1)}, {reg_name(self.rs2)}"
        if fmt == "fli":
            return f"{op} {reg_name(self.rd)}, {self.imm}"
        if fmt in ("load", "fload"):
            return f"{op} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if fmt in ("store", "fstore"):
            return f"{op} {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if fmt == "br":
            return f"{op} {reg_name(self.rs1)}, {reg_name(self.rs2)}, {tgt()}"
        if fmt == "j":
            return f"{op} {tgt()}"
        if fmt == "jal":
            return f"{op} {tgt()}"
        if fmt == "jr":
            return f"{op} {reg_name(self.rs1)}"
        if fmt == "jalr":
            return f"{op} {reg_name(self.rd)}, {reg_name(self.rs1)}"
        return op

    def __repr__(self):
        return f"<Instruction {self.render()}>"


def make_jal(target):
    """Build a ``jal`` (writes the return address into ``r31``)."""
    return Instruction("jal", rd=REG_RA, target=target)
