"""Accuracy metrics used by the paper's evaluation.

* Pearson's linear correlation coefficient (Section 5.1) quantifies how
  well the clone *tracks* metric changes across configurations.
* The relative-error formula of Section 5.2 quantifies trend prediction
  between two design points:

      RE_X = | (M_X,S / M_Y,S) - (M_X,R / M_Y,R) | / (M_X,R / M_Y,R)

  with R the real benchmark, S the synthetic clone, Y the base design
  point and X the changed one.
"""

import math


def pearson(xs, ys):
    """Pearson's linear correlation coefficient of two equal sequences."""
    n = len(xs)
    if n != len(ys):
        raise ValueError("sequences must have equal length")
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sxx = syy = 0.0
    for x, y in zip(xs, ys):
        dx = x - mean_x
        dy = y - mean_y
        cov += dx * dy
        sxx += dx * dx
        syy += dy * dy
    if sxx == 0.0 or syy == 0.0:
        # A constant series tracks anything perfectly iff the other is
        # constant too; define that as correlation 1, else 0.
        return 1.0 if sxx == syy else 0.0
    denominator = math.sqrt(sxx) * math.sqrt(syy)
    if denominator == 0.0:  # subnormal variances can underflow
        return 0.0
    return max(-1.0, min(1.0, cov / denominator))


def rank_vector(values, descending=False):
    """Ranks (1 = smallest by default), with ties averaged."""
    order = sorted(range(len(values)), key=lambda i: values[i],
                   reverse=descending)
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tied_end = position
        while (tied_end + 1 < len(order)
               and values[order[tied_end + 1]] == values[order[position]]):
            tied_end += 1
        average_rank = (position + tied_end) / 2.0 + 1.0
        for index in range(position, tied_end + 1):
            ranks[order[index]] = average_rank
        position = tied_end + 1
    return ranks


def spearman(xs, ys):
    """Spearman rank correlation (Pearson over rank vectors)."""
    return pearson(rank_vector(xs), rank_vector(ys))


def relative_error(metric_changed_real, metric_base_real,
                   metric_changed_synth, metric_base_synth):
    """The paper's RE_X for one design change (see module docstring)."""
    real_ratio = metric_changed_real / metric_base_real
    synth_ratio = metric_changed_synth / metric_base_synth
    return abs(synth_ratio - real_ratio) / abs(real_ratio)


def mean_absolute_percentage_error(reference, estimates):
    """Mean of |est - ref| / ref over paired sequences, as a fraction."""
    if len(reference) != len(estimates):
        raise ValueError("sequences must have equal length")
    if not reference:
        raise ValueError("need at least one point")
    total = 0.0
    for ref, est in zip(reference, estimates):
        if ref == 0:
            raise ValueError("reference value is zero")
        total += abs(est - ref) / abs(ref)
    return total / len(reference)
