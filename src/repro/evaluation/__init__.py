"""Evaluation harness: metrics and experiment runners for every table
and figure in the paper (see DESIGN.md's per-experiment index)."""

from repro.evaluation.metrics import (
    mean_absolute_percentage_error,
    pearson,
    rank_vector,
    relative_error,
    spearman,
)
from repro.evaluation.experiments import (
    base_config_comparison,
    baseline_cache_comparison,
    cache_correlation_study,
    clear_artifact_cache,
    design_change_study,
    stream_count_table,
    stride_coverage_table,
    workload_artifacts,
)
from repro.evaluation.reporting import format_table
from repro.exec import Artifacts

__all__ = [
    "Artifacts",
    "base_config_comparison",
    "baseline_cache_comparison",
    "cache_correlation_study",
    "clear_artifact_cache",
    "design_change_study",
    "format_table",
    "mean_absolute_percentage_error",
    "pearson",
    "rank_vector",
    "relative_error",
    "spearman",
    "stream_count_table",
    "stride_coverage_table",
    "workload_artifacts",
]
