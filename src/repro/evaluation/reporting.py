"""Plain-text table rendering for experiment results."""


def format_table(headers, rows, float_format="{:.4f}"):
    """Render an aligned text table.

    ``rows`` hold strings/ints/floats; floats use ``float_format``.
    """
    def render(value):
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
