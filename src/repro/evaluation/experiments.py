"""Experiment runners for the paper's figures and tables.

Every experiment follows the same recipe: execute the real workload,
profile it, synthesize the clone, execute the clone, then compare the two
programs on microarchitecture models.  ``workload_artifacts`` memoizes
the per-workload pipeline so all experiments in a process share it.
"""

from dataclasses import dataclass

from repro.core.baseline import MicroarchDependentSynthesizer
from repro.core.cloning import make_clone
from repro.core.profiler import profile_trace
from repro.core.synthesizer import SynthesisParameters
from repro.sim.functional import run_program
from repro.uarch.branch_predictors import simulate_predictor
from repro.uarch.cache import simulate_cache
from repro.uarch.config import BASE_CONFIG, CACHE_SWEEP, DESIGN_CHANGES
from repro.uarch.pipeline import simulate_pipeline
from repro.uarch.power import PowerModel
from repro.evaluation.metrics import (
    mean_absolute_percentage_error,
    pearson,
    rank_vector,
    relative_error,
)
from repro.workloads import build_workload, workload_names

#: Default clone run length: comparable to the real kernels' runs.
DEFAULT_CLONE_INSTRUCTIONS = 120_000

#: Safety cap for functional simulation of any program.
_MAX_FUNCTIONAL = 20_000_000


@dataclass
class Artifacts:
    """Everything produced by the cloning pipeline for one workload."""

    name: str
    program: object
    trace: object
    profile: object
    clone: object  # CloneResult
    clone_trace: object


_ARTIFACT_CACHE = {}


def workload_artifacts(name, parameters=None):
    """Build → run → profile → synthesize → run clone, memoized."""
    if parameters is None:
        parameters = SynthesisParameters(
            dynamic_instructions=DEFAULT_CLONE_INSTRUCTIONS)
    key = (name, repr(parameters))
    cached = _ARTIFACT_CACHE.get(key)
    if cached is not None:
        return cached
    program = build_workload(name)
    trace = run_program(program, max_instructions=_MAX_FUNCTIONAL)
    profile = profile_trace(trace)
    clone = make_clone(profile, parameters)
    clone_trace = run_program(clone.program,
                              max_instructions=_MAX_FUNCTIONAL)
    artifacts = Artifacts(name=name, program=program, trace=trace,
                          profile=profile, clone=clone,
                          clone_trace=clone_trace)
    _ARTIFACT_CACHE[key] = artifacts
    return artifacts


def clear_artifact_cache():
    _ARTIFACT_CACHE.clear()


def _names(names):
    return list(names) if names is not None else workload_names()


# ----------------------------------------------------------------------
# Figure 3: single-stride coverage of dynamic memory references
# ----------------------------------------------------------------------
def stride_coverage_table(names=None):
    """Rows of (workload, fraction of dynamic refs covered by one stride)."""
    rows = []
    for name in _names(names):
        artifacts = workload_artifacts(name)
        rows.append((name, artifacts.profile.stride_coverage))
    return rows


# ----------------------------------------------------------------------
# Figures 4 & 5: miss-per-instruction tracking across 28 cache configs
# ----------------------------------------------------------------------
def cache_correlation_study(names=None, configs=None):
    """Per-workload Pearson correlation of relative MPI across caches.

    Returns a dict with per-benchmark correlations (Figure 4), the mean
    ranking of each configuration under real and clone (Figure 5), and
    the raw MPI matrices.
    """
    configs = list(configs) if configs is not None else CACHE_SWEEP
    names = _names(names)
    correlations = {}
    mpi_real = {}
    mpi_clone = {}
    for name in names:
        artifacts = workload_artifacts(name)
        real_addresses = artifacts.trace.memory_addresses()
        clone_addresses = artifacts.clone_trace.memory_addresses()
        real_row = []
        clone_row = []
        for config in configs:
            real_row.append(simulate_cache(real_addresses, config).misses
                            / len(artifacts.trace))
            clone_row.append(simulate_cache(clone_addresses, config).misses
                             / len(artifacts.clone_trace))
        mpi_real[name] = real_row
        mpi_clone[name] = clone_row
        # Deltas relative to the first (256B direct-mapped) configuration.
        real_delta = [value - real_row[0] for value in real_row[1:]]
        clone_delta = [value - clone_row[0] for value in clone_row[1:]]
        correlations[name] = pearson(real_delta, clone_delta)

    # Figure 5: mean rank per configuration over all workloads (rank 1 =
    # fewest misses).
    n_configs = len(configs)
    rank_sums_real = [0.0] * n_configs
    rank_sums_clone = [0.0] * n_configs
    for name in names:
        for index, rank in enumerate(rank_vector(mpi_real[name])):
            rank_sums_real[index] += rank
        for index, rank in enumerate(rank_vector(mpi_clone[name])):
            rank_sums_clone[index] += rank
    mean_rank_real = [s / len(names) for s in rank_sums_real]
    mean_rank_clone = [s / len(names) for s in rank_sums_clone]

    return {
        "configs": configs,
        "correlations": correlations,
        "average_correlation": sum(correlations.values()) / len(correlations),
        "mpi_real": mpi_real,
        "mpi_clone": mpi_clone,
        "mean_rank_real": mean_rank_real,
        "mean_rank_clone": mean_rank_clone,
        "ranking_correlation": pearson(mean_rank_real, mean_rank_clone),
    }


# ----------------------------------------------------------------------
# Figures 6 & 7: absolute IPC and power on the base configuration
# ----------------------------------------------------------------------
def base_config_comparison(names=None, config=BASE_CONFIG,
                           max_instructions=None):
    """Per-workload IPC and power, real vs clone, plus average errors."""
    names = _names(names)
    power_model = PowerModel(config)
    rows = []
    for name in names:
        artifacts = workload_artifacts(name)
        real = simulate_pipeline(artifacts.trace, config,
                                 max_instructions=max_instructions)
        clone = simulate_pipeline(artifacts.clone_trace, config,
                                  max_instructions=max_instructions)
        rows.append({
            "name": name,
            "ipc_real": real.ipc,
            "ipc_clone": clone.ipc,
            "power_real": power_model.evaluate(real).total,
            "power_clone": power_model.evaluate(clone).total,
        })
    ipc_error = mean_absolute_percentage_error(
        [row["ipc_real"] for row in rows],
        [row["ipc_clone"] for row in rows])
    power_error = mean_absolute_percentage_error(
        [row["power_real"] for row in rows],
        [row["power_clone"] for row in rows])
    return {"rows": rows, "config": config,
            "average_ipc_error": ipc_error,
            "average_power_error": power_error}


# ----------------------------------------------------------------------
# Table 3 / Figures 8 & 9: relative accuracy over five design changes
# ----------------------------------------------------------------------
def design_change_study(names=None, base=BASE_CONFIG, changes=None,
                        max_instructions=None):
    """Relative IPC/power error of the clone for each design change.

    Also returns the per-workload speedups and power deltas for the
    width-doubling change (the paper's Figures 8 and 9).
    """
    changes = list(changes) if changes is not None else DESIGN_CHANGES
    names = _names(names)
    base_power_model = PowerModel(base)

    base_results = {}
    for name in names:
        artifacts = workload_artifacts(name)
        real = simulate_pipeline(artifacts.trace, base,
                                 max_instructions=max_instructions)
        clone = simulate_pipeline(artifacts.clone_trace, base,
                                  max_instructions=max_instructions)
        base_results[name] = {
            "ipc_real": real.ipc, "ipc_clone": clone.ipc,
            "power_real": base_power_model.evaluate(real).total,
            "power_clone": base_power_model.evaluate(clone).total,
        }

    change_rows = []
    width_detail = None
    for config in changes:
        power_model = PowerModel(config)
        ipc_errors = []
        power_errors = []
        detail = []
        for name in names:
            artifacts = workload_artifacts(name)
            real = simulate_pipeline(artifacts.trace, config,
                                     max_instructions=max_instructions)
            clone = simulate_pipeline(artifacts.clone_trace, config,
                                      max_instructions=max_instructions)
            base_row = base_results[name]
            power_real = power_model.evaluate(real).total
            power_clone = power_model.evaluate(clone).total
            ipc_errors.append(relative_error(
                real.ipc, base_row["ipc_real"],
                clone.ipc, base_row["ipc_clone"]))
            power_errors.append(relative_error(
                power_real, base_row["power_real"],
                power_clone, base_row["power_clone"]))
            detail.append({
                "name": name,
                "speedup_real": real.ipc / base_row["ipc_real"],
                "speedup_clone": clone.ipc / base_row["ipc_clone"],
                "power_ratio_real": power_real / base_row["power_real"],
                "power_ratio_clone": power_clone / base_row["power_clone"],
            })
        row = {
            "change": config.name,
            "avg_ipc_relative_error":
                sum(ipc_errors) / len(ipc_errors),
            "avg_power_relative_error":
                sum(power_errors) / len(power_errors),
            "detail": detail,
        }
        change_rows.append(row)
        if config.name == "2x-width":
            width_detail = detail
    return {"base": base_results, "changes": change_rows,
            "width_detail": width_detail}


# ----------------------------------------------------------------------
# Ablation A: microarchitecture-dependent baseline vs our clone
# ----------------------------------------------------------------------
def baseline_cache_comparison(names=None, configs=None,
                              profiled_cache=None):
    """How each synthesis style tracks cache changes (the paper's
    motivating claim, Sections 1-3).

    The microarchitecture-dependent baseline is tuned to the base
    machine's L1D; we then compare Pearson correlations across the cache
    sweep for it and for the microarchitecture-independent clone.
    """
    configs = list(configs) if configs is not None else CACHE_SWEEP
    if profiled_cache is None:
        profiled_cache = BASE_CONFIG.l1d
    names = _names(names)
    rows = []
    for name in names:
        artifacts = workload_artifacts(name)
        real_addresses = artifacts.trace.memory_addresses()
        real_n = len(artifacts.trace)
        measured_miss = simulate_cache(real_addresses,
                                       profiled_cache).miss_rate
        measured_mispredict = simulate_predictor(
            artifacts.trace, BASE_CONFIG.predictor).stats.misprediction_rate
        baseline = MicroarchDependentSynthesizer(
            artifacts.profile, measured_miss, measured_mispredict,
            profiled_cache_bytes=profiled_cache.size,
            profiled_line_bytes=profiled_cache.line,
            parameters=SynthesisParameters(
                dynamic_instructions=DEFAULT_CLONE_INSTRUCTIONS),
        ).synthesize()
        baseline_trace = run_program(baseline.program,
                                     max_instructions=_MAX_FUNCTIONAL)
        baseline_addresses = baseline_trace.memory_addresses()
        clone_addresses = artifacts.clone_trace.memory_addresses()

        real_row, clone_row, baseline_row = [], [], []
        for config in configs:
            real_row.append(
                simulate_cache(real_addresses, config).misses / real_n)
            clone_row.append(
                simulate_cache(clone_addresses, config).misses
                / len(artifacts.clone_trace))
            baseline_row.append(
                simulate_cache(baseline_addresses, config).misses
                / len(baseline_trace))
        real_delta = [v - real_row[0] for v in real_row[1:]]
        mean_real = sum(real_row) / len(real_row)

        def mpi_error(row):
            """Mean |synthetic - real| MPI, normalized by the real mean —
            the "large errors when configurations change" the paper
            ascribes to microarchitecture-dependent synthesis."""
            if mean_real == 0:
                return 0.0
            return (sum(abs(s - r) for s, r in zip(row, real_row))
                    / len(row) / mean_real)

        rows.append({
            "name": name,
            "measured_miss_rate": measured_miss,
            "clone_correlation": pearson(
                real_delta, [v - clone_row[0] for v in clone_row[1:]]),
            "baseline_correlation": pearson(
                real_delta,
                [v - baseline_row[0] for v in baseline_row[1:]]),
            "clone_mpi_error": mpi_error(clone_row),
            "baseline_mpi_error": mpi_error(baseline_row),
        })
    count = len(rows)
    return {
        "rows": rows,
        "avg_clone_correlation":
            sum(r["clone_correlation"] for r in rows) / count,
        "avg_baseline_correlation":
            sum(r["baseline_correlation"] for r in rows) / count,
        "avg_clone_mpi_error":
            sum(r["clone_mpi_error"] for r in rows) / count,
        "avg_baseline_mpi_error":
            sum(r["baseline_mpi_error"] for r in rows) / count,
    }


# ----------------------------------------------------------------------
# Ablation B: accuracy vs number of unique streams (the susan discussion)
# ----------------------------------------------------------------------
def stream_count_table(names=None):
    """(workload, unique streams, cache correlation) rows, most streams
    first — the paper's explanation of susan's lower correlation."""
    names = _names(names)
    study = cache_correlation_study(names)
    rows = []
    for name in names:
        artifacts = workload_artifacts(name)
        rows.append((name, artifacts.profile.unique_streams,
                     study["correlations"][name]))
    rows.sort(key=lambda row: row[1], reverse=True)
    return rows
