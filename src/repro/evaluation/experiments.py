"""Experiment runners for the paper's figures and tables.

Every experiment follows the same recipe: execute the real workload,
profile it, synthesize the clone, execute the clone, then compare the two
programs on microarchitecture models.  ``workload_artifacts`` memoizes
the per-workload pipeline in-process *and* persists it through the
:mod:`repro.exec` artifact store, so artifacts are shared across
processes and across runs.

Every grid experiment takes a ``jobs`` argument (default: the
``REPRO_JOBS`` environment variable, else serial).  The per-workload
work is fanned out over a process pool via
:func:`repro.exec.parallel_map`; with ``jobs=1`` the same worker
functions run in a plain loop, so serial and parallel results are
bit-identical.  Cache sweeps replay each address stream against all
configurations in one batched pass (:func:`simulate_cache_sweep`)
instead of re-converting and re-walking the stream per configuration,
and pipeline grids go through :func:`simulate_pipeline_sweep`, which
digests each trace once and shares cache/predictor outcome banks and
compiled scheduling kernels across the whole configuration grid (bit-
identical to per-config ``PipelineModel.run`` by construction and by
differential test).
"""

from repro.core.baseline import MicroarchDependentSynthesizer
from repro.core.synthesizer import SynthesisParameters
from repro.exec import parallel_map, pipeline_artifacts
from repro.sim.functional import run_program
from repro.uarch.cache import simulate_cache_sweep
from repro.uarch.config import BASE_CONFIG, CACHE_SWEEP, DESIGN_CHANGES
from repro.uarch.power import shared_power_model
from repro.uarch.sweep import (simulate_pipeline_sweep,
                               simulate_predictor_sweep)
from repro.evaluation.metrics import (
    mean_absolute_percentage_error,
    pearson,
    rank_vector,
    relative_error,
)
from repro.workloads import get_workload, workload_names

#: Default clone run length: comparable to the real kernels' runs.
DEFAULT_CLONE_INSTRUCTIONS = 120_000

#: Safety cap for functional simulation of any program.
_MAX_FUNCTIONAL = 20_000_000


_ARTIFACT_CACHE = {}


def workload_artifacts(name, parameters=None):
    """Build → run → profile → synthesize → run clone, memoized.

    The first level is an in-process dict; behind it sits the
    persistent :class:`repro.exec.ArtifactStore`, so a warm on-disk
    cache makes this cheap even in a fresh process (including the
    parallel grid runner's workers).
    """
    if parameters is None:
        parameters = SynthesisParameters(
            dynamic_instructions=DEFAULT_CLONE_INSTRUCTIONS)
    key = (name, repr(parameters))
    cached = _ARTIFACT_CACHE.get(key)
    if cached is not None:
        return cached
    source = get_workload(name).source()
    artifacts = pipeline_artifacts(name, source, parameters,
                                   max_instructions=_MAX_FUNCTIONAL)
    _ARTIFACT_CACHE[key] = artifacts
    return artifacts


def clear_artifact_cache():
    """Drop the in-process memo (the persistent store is untouched)."""
    _ARTIFACT_CACHE.clear()


def _names(names):
    return list(names) if names is not None else workload_names()


# ----------------------------------------------------------------------
# Figure 3: single-stride coverage of dynamic memory references
# ----------------------------------------------------------------------
def _stride_coverage_worker(name):
    artifacts = workload_artifacts(name)
    return name, artifacts.profile.stride_coverage


def stride_coverage_table(names=None, jobs=None):
    """Rows of (workload, fraction of dynamic refs covered by one stride)."""
    return parallel_map(_stride_coverage_worker, _names(names), jobs)


# ----------------------------------------------------------------------
# Figures 4 & 5: miss-per-instruction tracking across 28 cache configs
# ----------------------------------------------------------------------
def _cache_mpi_worker(task):
    """One workload's real and clone MPI rows over the whole sweep."""
    name, configs = task
    artifacts = workload_artifacts(name)
    real_stats = simulate_cache_sweep(
        artifacts.trace.memory_addresses(), configs)
    clone_stats = simulate_cache_sweep(
        artifacts.clone_trace.memory_addresses(), configs)
    real_n = len(artifacts.trace)
    clone_n = len(artifacts.clone_trace)
    return (name,
            [stats.misses / real_n for stats in real_stats],
            [stats.misses / clone_n for stats in clone_stats])


def cache_correlation_study(names=None, configs=None, jobs=None):
    """Per-workload Pearson correlation of relative MPI across caches.

    Returns a dict with per-benchmark correlations (Figure 4), the mean
    ranking of each configuration under real and clone (Figure 5), and
    the raw MPI matrices.
    """
    configs = list(configs) if configs is not None else CACHE_SWEEP
    names = _names(names)
    results = parallel_map(_cache_mpi_worker,
                           [(name, configs) for name in names], jobs)
    correlations = {}
    mpi_real = {}
    mpi_clone = {}
    for name, real_row, clone_row in results:
        mpi_real[name] = real_row
        mpi_clone[name] = clone_row
        # Deltas relative to the first (256B direct-mapped) configuration.
        real_delta = [value - real_row[0] for value in real_row[1:]]
        clone_delta = [value - clone_row[0] for value in clone_row[1:]]
        correlations[name] = pearson(real_delta, clone_delta)

    # Figure 5: mean rank per configuration over all workloads (rank 1 =
    # fewest misses).
    n_configs = len(configs)
    rank_sums_real = [0.0] * n_configs
    rank_sums_clone = [0.0] * n_configs
    for name in names:
        for index, rank in enumerate(rank_vector(mpi_real[name])):
            rank_sums_real[index] += rank
        for index, rank in enumerate(rank_vector(mpi_clone[name])):
            rank_sums_clone[index] += rank
    mean_rank_real = [s / len(names) for s in rank_sums_real]
    mean_rank_clone = [s / len(names) for s in rank_sums_clone]

    return {
        "configs": configs,
        "correlations": correlations,
        "average_correlation": sum(correlations.values()) / len(correlations),
        "mpi_real": mpi_real,
        "mpi_clone": mpi_clone,
        "mean_rank_real": mean_rank_real,
        "mean_rank_clone": mean_rank_clone,
        "ranking_correlation": pearson(mean_rank_real, mean_rank_clone),
    }


# ----------------------------------------------------------------------
# Figures 6 & 7: absolute IPC and power on the base configuration
# ----------------------------------------------------------------------
def _base_config_worker(task):
    name, config, max_instructions = task
    artifacts = workload_artifacts(name)
    power_model = shared_power_model(config)
    # A one-config "grid": the sweep path shares its digest and outcome
    # banks with the wider studies through the artifact store.
    [real] = simulate_pipeline_sweep(artifacts.trace, [config],
                                     max_instructions=max_instructions)
    [clone] = simulate_pipeline_sweep(artifacts.clone_trace, [config],
                                      max_instructions=max_instructions)
    return {
        "name": name,
        "ipc_real": real.ipc,
        "ipc_clone": clone.ipc,
        "power_real": power_model.evaluate(real).total,
        "power_clone": power_model.evaluate(clone).total,
    }


def base_config_comparison(names=None, config=BASE_CONFIG,
                           max_instructions=None, jobs=None):
    """Per-workload IPC and power, real vs clone, plus average errors."""
    names = _names(names)
    rows = parallel_map(
        _base_config_worker,
        [(name, config, max_instructions) for name in names], jobs)
    ipc_error = mean_absolute_percentage_error(
        [row["ipc_real"] for row in rows],
        [row["ipc_clone"] for row in rows])
    power_error = mean_absolute_percentage_error(
        [row["power_real"] for row in rows],
        [row["power_clone"] for row in rows])
    return {"rows": rows, "config": config,
            "average_ipc_error": ipc_error,
            "average_power_error": power_error}


# ----------------------------------------------------------------------
# Table 3 / Figures 8 & 9: relative accuracy over five design changes
# ----------------------------------------------------------------------
def _design_change_worker(task):
    """IPC/power for one workload on base plus every changed config.

    Returns ``(name, rows)`` where ``rows`` aligns positionally with
    ``[base] + changes``.
    """
    name, configs, max_instructions = task
    artifacts = workload_artifacts(name)
    # One sweep per trace digests it once and shares cache/predictor
    # outcome banks across every config in the grid.
    real_results = simulate_pipeline_sweep(
        artifacts.trace, configs, max_instructions=max_instructions)
    clone_results = simulate_pipeline_sweep(
        artifacts.clone_trace, configs, max_instructions=max_instructions)
    rows = []
    for config, real, clone in zip(configs, real_results, clone_results):
        power_model = shared_power_model(config)
        rows.append({
            "ipc_real": real.ipc, "ipc_clone": clone.ipc,
            "power_real": power_model.evaluate(real).total,
            "power_clone": power_model.evaluate(clone).total,
        })
    return name, rows


def design_change_study(names=None, base=BASE_CONFIG, changes=None,
                        max_instructions=None, jobs=None):
    """Relative IPC/power error of the clone for each design change.

    Also returns the per-workload speedups and power deltas for the
    width-doubling change (the paper's Figures 8 and 9).
    """
    changes = list(changes) if changes is not None else DESIGN_CHANGES
    names = _names(names)
    grid = dict(parallel_map(
        _design_change_worker,
        [(name, [base] + changes, max_instructions) for name in names],
        jobs))

    base_results = {name: grid[name][0] for name in names}

    change_rows = []
    width_detail = None
    for change_index, config in enumerate(changes, start=1):
        ipc_errors = []
        power_errors = []
        detail = []
        for name in names:
            row = grid[name][change_index]
            base_row = base_results[name]
            ipc_errors.append(relative_error(
                row["ipc_real"], base_row["ipc_real"],
                row["ipc_clone"], base_row["ipc_clone"]))
            power_errors.append(relative_error(
                row["power_real"], base_row["power_real"],
                row["power_clone"], base_row["power_clone"]))
            detail.append({
                "name": name,
                "speedup_real": row["ipc_real"] / base_row["ipc_real"],
                "speedup_clone": row["ipc_clone"] / base_row["ipc_clone"],
                "power_ratio_real":
                    row["power_real"] / base_row["power_real"],
                "power_ratio_clone":
                    row["power_clone"] / base_row["power_clone"],
            })
        change_rows.append({
            "change": config.name,
            "avg_ipc_relative_error":
                sum(ipc_errors) / len(ipc_errors),
            "avg_power_relative_error":
                sum(power_errors) / len(power_errors),
            "detail": detail,
        })
        if config.name == "2x-width":
            width_detail = detail
    return {"base": base_results, "changes": change_rows,
            "width_detail": width_detail}


# ----------------------------------------------------------------------
# Ablation A: microarchitecture-dependent baseline vs our clone
# ----------------------------------------------------------------------
def _baseline_comparison_worker(task):
    name, configs, profiled_cache = task
    artifacts = workload_artifacts(name)
    real_addresses = artifacts.trace.memory_addresses()
    real_n = len(artifacts.trace)
    # One batched pass covers the sweep *and* the profiled cache.
    real_stats = simulate_cache_sweep(real_addresses,
                                      list(configs) + [profiled_cache])
    measured_miss = real_stats[-1].miss_rate
    real_row = [stats.misses / real_n for stats in real_stats[:-1]]
    # The predictor-sweep path shares the per-trace mispredict outcome
    # bank (in-process and via the store) with every pipeline sweep
    # that uses the same predictor on this trace.
    [measured_predictor] = simulate_predictor_sweep(
        artifacts.trace, [BASE_CONFIG.predictor])
    measured_mispredict = measured_predictor.stats.misprediction_rate
    baseline = MicroarchDependentSynthesizer(
        artifacts.profile, measured_miss, measured_mispredict,
        profiled_cache_bytes=profiled_cache.size,
        profiled_line_bytes=profiled_cache.line,
        parameters=SynthesisParameters(
            dynamic_instructions=DEFAULT_CLONE_INSTRUCTIONS),
    ).synthesize()
    baseline_trace = run_program(baseline.program,
                                 max_instructions=_MAX_FUNCTIONAL)
    clone_n = len(artifacts.clone_trace)
    baseline_n = len(baseline_trace)
    clone_row = [
        stats.misses / clone_n for stats in simulate_cache_sweep(
            artifacts.clone_trace.memory_addresses(), configs)]
    baseline_row = [
        stats.misses / baseline_n for stats in simulate_cache_sweep(
            baseline_trace.memory_addresses(), configs)]

    real_delta = [v - real_row[0] for v in real_row[1:]]
    mean_real = sum(real_row) / len(real_row)

    def mpi_error(row):
        """Mean |synthetic - real| MPI, normalized by the real mean —
        the "large errors when configurations change" the paper
        ascribes to microarchitecture-dependent synthesis."""
        if mean_real == 0:
            return 0.0
        return (sum(abs(s - r) for s, r in zip(row, real_row))
                / len(row) / mean_real)

    return {
        "name": name,
        "measured_miss_rate": measured_miss,
        "clone_correlation": pearson(
            real_delta, [v - clone_row[0] for v in clone_row[1:]]),
        "baseline_correlation": pearson(
            real_delta,
            [v - baseline_row[0] for v in baseline_row[1:]]),
        "clone_mpi_error": mpi_error(clone_row),
        "baseline_mpi_error": mpi_error(baseline_row),
    }


def baseline_cache_comparison(names=None, configs=None,
                              profiled_cache=None, jobs=None):
    """How each synthesis style tracks cache changes (the paper's
    motivating claim, Sections 1-3).

    The microarchitecture-dependent baseline is tuned to the base
    machine's L1D; we then compare Pearson correlations across the cache
    sweep for it and for the microarchitecture-independent clone.
    """
    configs = list(configs) if configs is not None else CACHE_SWEEP
    if profiled_cache is None:
        profiled_cache = BASE_CONFIG.l1d
    names = _names(names)
    rows = parallel_map(
        _baseline_comparison_worker,
        [(name, configs, profiled_cache) for name in names], jobs)
    count = len(rows)
    return {
        "rows": rows,
        "avg_clone_correlation":
            sum(r["clone_correlation"] for r in rows) / count,
        "avg_baseline_correlation":
            sum(r["baseline_correlation"] for r in rows) / count,
        "avg_clone_mpi_error":
            sum(r["clone_mpi_error"] for r in rows) / count,
        "avg_baseline_mpi_error":
            sum(r["baseline_mpi_error"] for r in rows) / count,
    }


# ----------------------------------------------------------------------
# Ablation B: accuracy vs number of unique streams (the susan discussion)
# ----------------------------------------------------------------------
def stream_count_table(names=None, jobs=None):
    """(workload, unique streams, cache correlation) rows, most streams
    first — the paper's explanation of susan's lower correlation."""
    names = _names(names)
    study = cache_correlation_study(names, jobs=jobs)
    rows = []
    for name in names:
        artifacts = workload_artifacts(name)
        rows.append((name, artifacts.profile.unique_streams,
                     study["correlations"][name]))
    rows.sort(key=lambda row: row[1], reverse=True)
    return rows
