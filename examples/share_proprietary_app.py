"""The dissemination workflow the paper is actually about.

A vendor has a proprietary application; an architect wants a benchmark.
The vendor profiles in-house, ships only the microarchitecture-
independent profile (JSON) or the generated clone; the architect
regenerates and uses the clone.  This script plays both roles and writes
the shareable artifacts into ./clone_artifacts/.

    python examples/share_proprietary_app.py
"""

import os

from repro import (
    WorkloadProfile,
    build_workload,
    emit_c_source,
    make_clone,
    profile_program,
    run_program,
)
from repro.uarch import BASE_CONFIG, simulate_pipeline

OUTPUT_DIR = "clone_artifacts"
WORKLOAD = "blowfish"  # stands in for the customer's proprietary code


def vendor_side():
    """Inside the vendor's firewall: profile and export."""
    print("[vendor] profiling the proprietary application ...")
    app = build_workload(WORKLOAD)
    profile = profile_program(app)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    profile_path = os.path.join(OUTPUT_DIR, "workload_profile.json")
    profile.save(profile_path)
    print(f"[vendor] exported {profile_path} "
          f"({os.path.getsize(profile_path)} bytes) — no source, no "
          "binary, no input data leaves the building")
    return app, profile_path


def architect_side(profile_path):
    """At the microprocessor designer: regenerate and use the clone."""
    print("\n[architect] loading the shipped profile ...")
    profile = WorkloadProfile.load(profile_path)
    clone = make_clone(profile)

    asm_path = os.path.join(OUTPUT_DIR, "clone.s")
    with open(asm_path, "w") as handle:
        handle.write(clone.asm_source)
    c_path = os.path.join(OUTPUT_DIR, "clone.c")
    with open(c_path, "w") as handle:
        handle.write(emit_c_source(clone.program))
    print(f"[architect] wrote {asm_path} and {c_path} (the paper's "
          "C-with-asm dissemination artifact)")
    return clone


def main():
    app, profile_path = vendor_side()
    clone = architect_side(profile_path)

    print("\n[check] comparing real application vs clone on the base "
          "machine (the vendor could publish this once):")
    real = simulate_pipeline(run_program(app), BASE_CONFIG)
    synthetic = simulate_pipeline(run_program(clone.program), BASE_CONFIG)
    print(f"  IPC real={real.ipc:.3f}  clone={synthetic.ipc:.3f}  "
          f"error={abs(synthetic.ipc - real.ipc) / real.ipc:.1%}")


if __name__ == "__main__":
    main()
