"""What-if studies by editing the abstract workload model.

The paper motivates keeping the model simple so one can "study what-if
scenarios (by altering the memory access pattern of the program)".
This example grows and shrinks a workload's data footprint through the
`footprint_scale` knob and watches the L1D miss rate respond — without
touching the (notionally proprietary) source.

    python examples/what_if_scenarios.py
"""

from repro import build_workload, make_clone, profile_program, run_program
from repro.core import SynthesisParameters
from repro.evaluation import format_table
from repro.uarch import CacheConfig, simulate_cache

WORKLOAD = "rijndael"
CACHE = CacheConfig(4 * 1024, 2, 32)
SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


def main():
    print(f"== What-if: scaling {WORKLOAD}'s data footprint ==")
    app = build_workload(WORKLOAD)
    profile = profile_program(app)
    print(f"measured footprint: {profile.data_footprint_bytes} bytes; "
          f"evaluating on a {CACHE.label()} cache\n")

    rows = []
    for scale in SCALES:
        clone = make_clone(profile, SynthesisParameters(
            dynamic_instructions=100_000, footprint_scale=scale))
        trace = run_program(clone.program)
        stats = simulate_cache(trace.memory_addresses(), CACHE)
        rows.append([f"x{scale}", clone.stats["footprint_bytes"],
                     f"{stats.miss_rate:.4f}"])
    print(format_table(["footprint scale", "clone bytes", "miss rate"],
                       rows))
    print("\nGrowing the cloned footprint past the cache capacity drives "
          "the miss rate up, exactly the lever an architect would pull "
          "to ask 'what if the customer's working set doubles?'")


if __name__ == "__main__":
    main()
