"""Design-space exploration using clones in lieu of real applications.

Walks the paper's five design changes (Section 5.2) plus two extra
predictor options, for a pair of workloads, and reports how well each
clone predicts the real speedup — the paper's relative-accuracy use case.

    python examples/design_space_exploration.py
"""

from repro import build_workload, clone_program, run_program
from repro.evaluation import format_table, relative_error
from repro.uarch import (
    BASE_CONFIG,
    DESIGN_CHANGES,
    estimate_power,
    simulate_pipeline,
)

WORKLOADS = ("adpcm", "rijndael")

EXTRA_POINTS = [
    BASE_CONFIG.renamed("gshare-bpred", predictor="gshare"),
    BASE_CONFIG.renamed("bimodal-bpred", predictor="bimodal"),
]


def main():
    design_points = list(DESIGN_CHANGES) + EXTRA_POINTS
    for name in WORKLOADS:
        print(f"\n== {name} ==")
        app = build_workload(name)
        clone = clone_program(app)
        real_trace = run_program(app)
        clone_trace = run_program(clone.program)

        base_real = simulate_pipeline(real_trace, BASE_CONFIG)
        base_clone = simulate_pipeline(clone_trace, BASE_CONFIG)
        rows = []
        for config in design_points:
            real = simulate_pipeline(real_trace, config)
            synthetic = simulate_pipeline(clone_trace, config)
            speedup_real = real.ipc / base_real.ipc
            speedup_clone = synthetic.ipc / base_clone.ipc
            error = relative_error(real.ipc, base_real.ipc,
                                   synthetic.ipc, base_clone.ipc)
            power_ratio = (estimate_power(synthetic, config)
                           / estimate_power(base_clone, BASE_CONFIG))
            rows.append([config.name, speedup_real, speedup_clone,
                         error, power_ratio])
        print(format_table(
            ["design point", "speedup real", "speedup clone",
             "rel err", "clone power x"],
            rows, float_format="{:.3f}"))
        winner_real = max(rows, key=lambda row: row[1])[0]
        winner_clone = max(rows, key=lambda row: row[2])[0]
        print(f"best design point: real says {winner_real!r}, "
              f"clone says {winner_clone!r}")


if __name__ == "__main__":
    main()
