"""Cache design study with a clone as the stand-in workload.

Reproduces the paper's Section 5.1 methodology for one application: run
real benchmark and clone over the 28 L1D configurations, compare
misses-per-instruction, rankings, and the Pearson correlation of the
relative changes.

    python examples/cache_design_study.py [workload]
"""

import sys

from repro import build_workload, clone_program, run_program
from repro.evaluation import format_table, pearson, rank_vector
from repro.uarch import CACHE_SWEEP, simulate_cache


def main(name="dijkstra"):
    print(f"== Cache design study: {name} ==")
    app = build_workload(name)
    clone = clone_program(app)
    real_trace = run_program(app)
    clone_trace = run_program(clone.program)
    real_addresses = real_trace.memory_addresses()
    clone_addresses = clone_trace.memory_addresses()

    real_mpi, clone_mpi = [], []
    for config in CACHE_SWEEP:
        real_mpi.append(simulate_cache(real_addresses, config).misses
                        / len(real_trace))
        clone_mpi.append(simulate_cache(clone_addresses, config).misses
                         / len(clone_trace))

    real_ranks = rank_vector(real_mpi)
    clone_ranks = rank_vector(clone_mpi)
    rows = []
    for config, r_mpi, c_mpi, r_rank, c_rank in zip(
            CACHE_SWEEP, real_mpi, clone_mpi, real_ranks, clone_ranks):
        rows.append([config.label(), f"{r_mpi:.5f}", f"{c_mpi:.5f}",
                     int(r_rank), int(c_rank)])
    print(format_table(
        ["config", "real MPI", "clone MPI", "real rank", "clone rank"],
        rows))

    correlation = pearson([v - real_mpi[0] for v in real_mpi[1:]],
                          [v - clone_mpi[0] for v in clone_mpi[1:]])
    rank_correlation = pearson(real_ranks, clone_ranks)
    print(f"\nPearson R on relative MPI (paper Fig. 4): {correlation:+.3f}")
    print(f"Ranking correlation      (paper Fig. 5): {rank_correlation:+.3f}")
    best_real = CACHE_SWEEP[real_mpi.index(min(real_mpi))].label()
    best_clone = CACHE_SWEEP[clone_mpi.index(min(clone_mpi))].label()
    print(f"best configuration: real={best_real}  clone={best_clone}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
