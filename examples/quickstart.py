"""Quickstart: clone one "proprietary" application and check the clone.

Runs the full Figure-1 pipeline on the qsort kernel: execute, profile,
synthesize, then compare real vs clone on the paper's base machine.

    python examples/quickstart.py
"""

from repro import build_workload, clone_program, run_program
from repro.uarch import BASE_CONFIG, estimate_power, simulate_pipeline


def main():
    print("== Performance cloning quickstart ==")
    app = build_workload("qsort")
    print(f"original application: {app.name} "
          f"({len(app)} static instructions)")

    result = clone_program(app)
    clone = result.program
    print(f"synthetic clone: {clone.name} ({len(clone)} static "
          f"instructions, {result.stats['block_instances']} basic-block "
          f"instances, {result.stats['iterations']} loop iterations)")

    real_trace = run_program(app)
    clone_trace = run_program(clone)
    print(f"dynamic lengths: real={len(real_trace)} "
          f"clone={len(clone_trace)}")

    real = simulate_pipeline(real_trace, BASE_CONFIG)
    synthetic = simulate_pipeline(clone_trace, BASE_CONFIG)
    print("\nbase configuration (paper Table 2):")
    print(f"  IPC    real={real.ipc:.3f}  clone={synthetic.ipc:.3f}  "
          f"error={abs(synthetic.ipc - real.ipc) / real.ipc:.1%}")
    real_power = estimate_power(real)
    clone_power = estimate_power(synthetic)
    print(f"  power  real={real_power:.2f}  clone={clone_power:.2f}  "
          f"error={abs(clone_power - real_power) / real_power:.1%}")
    print(f"  bpred miss  real={real.branch_misprediction_rate:.3f}  "
          f"clone={synthetic.branch_misprediction_rate:.3f}")
    print(f"  L1D miss    real={real.dcache_miss_rate:.3f}  "
          f"clone={synthetic.dcache_miss_rate:.3f}")

    print("\nThe clone's code is entirely synthetic — the first lines "
          "of its assembly:")
    for line in result.asm_source.splitlines()[:12]:
        print(f"    {line}")


if __name__ == "__main__":
    main()
