"""Shim so `pip install -e .` works without network access (no wheel pkg)."""
from setuptools import setup

setup()
