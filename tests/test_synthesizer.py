"""Tests for clone generation (paper Sec. 3.2) and the end-to-end claim:
the clone's own microarchitecture-independent profile resembles the
original's."""

import pytest

from repro.core import make_clone, profile_trace
from repro.core.synthesizer import (
    SynthesisParameters,
    _interleave,
    estimate_instruction_lines,
)
from repro.isa.instructions import IClass
from repro.sim import run_program


class TestInterleave:
    def test_counts_preserved(self):
        sequence = _interleave({"a": 3, "b": 2, "c": 1})
        assert sorted(sequence) == ["a", "a", "a", "b", "b", "c"]

    def test_spreading(self):
        sequence = _interleave({"a": 4, "b": 4})
        # No long monocultures: a and b alternate.
        runs = max(len(list(group)) for _, group in
                   __import__("itertools").groupby(sequence))
        assert runs <= 2

    def test_empty(self):
        assert _interleave({}) == []


class TestLineEstimate:
    def test_counts_real_ops(self):
        assert estimate_instruction_lines(
            ["    add r1, r2, r3", "label:", "    # nothing", ""]) == 1

    def test_la_counts_two(self):
        assert estimate_instruction_lines(["    la r4, sym"]) == 2

    def test_li_expansion_aware(self):
        assert estimate_instruction_lines(["    li r4, 12"]) == 1
        assert estimate_instruction_lines(["    li r4, 1000000"]) == 2


class TestGeneratedStructure:
    def test_clone_assembles_and_halts(self, loop_nest_clone):
        trace = run_program(loop_nest_clone.program,
                            max_instructions=2_000_000)
        assert len(trace) > 0

    def test_dynamic_length_near_target(self, loop_nest_clone,
                                        loop_nest_clone_trace):
        target = loop_nest_clone.parameters.dynamic_instructions
        assert 0.5 * target <= len(loop_nest_clone_trace) <= 2.0 * target

    def test_stats_recorded(self, loop_nest_clone):
        stats = loop_nest_clone.stats
        assert stats["block_instances"] > 0
        assert stats["iterations"] >= 2
        assert stats["clusters"]

    def test_source_is_reassemblable(self, loop_nest_clone):
        from repro.isa import assemble
        again = assemble(loop_nest_clone.asm_source, name="again")
        assert len(again) == len(loop_nest_clone.program)

    def test_deterministic_for_seed(self, loop_nest_profile):
        params = SynthesisParameters(dynamic_instructions=20_000, seed=9)
        a = make_clone(loop_nest_profile, params)
        b = make_clone(loop_nest_profile, params)
        assert a.asm_source == b.asm_source

    def test_different_seeds_differ(self, loop_nest_profile):
        a = make_clone(loop_nest_profile,
                       SynthesisParameters(dynamic_instructions=20_000,
                                           seed=1))
        b = make_clone(loop_nest_profile,
                       SynthesisParameters(dynamic_instructions=20_000,
                                           seed=2))
        assert a.asm_source != b.asm_source

    def test_target_block_instances_respected(self, loop_nest_profile):
        params = SynthesisParameters(dynamic_instructions=20_000,
                                     target_block_instances=64)
        result = make_clone(loop_nest_profile, params)
        assert result.stats["block_instances"] == 64

    def test_code_is_different_from_original(self, loop_nest_clone,
                                             loop_nest_program):
        """The whole point: the clone hides the original code."""
        original = [i.render() for i in loop_nest_program.instructions]
        clone = [i.render() for i in loop_nest_clone.program.instructions]
        assert original != clone

    def test_too_many_clusters_rejected(self, loop_nest_profile):
        from repro.core import CloneSynthesizer
        with pytest.raises(ValueError):
            CloneSynthesizer(loop_nest_profile,
                             SynthesisParameters(max_pointer_clusters=9))


class TestCloneFidelity:
    """Profile the clone and compare to the original profile."""

    @pytest.fixture(scope="class")
    def clone_profile(self, loop_nest_clone_trace):
        return profile_trace(loop_nest_clone_trace)

    def test_instruction_mix_close(self, loop_nest_profile, clone_profile):
        original = loop_nest_profile.mix_fractions()
        clone = clone_profile.mix_fractions()
        for iclass in (IClass.IALU, IClass.LOAD, IClass.STORE,
                       IClass.BRANCH):
            assert clone[iclass] == pytest.approx(original[iclass],
                                                  abs=0.08), \
                f"class {iclass} mix mismatch"

    def test_stride_behaviour_preserved(self, loop_nest_profile,
                                        clone_profile):
        # The fixture program has a tiny (256B) footprint, which forces
        # short reset periods; real workloads sit well above this (see
        # test_workloads.py for corpus-level coverage checks).
        assert clone_profile.stride_coverage > 0.7

    def test_footprint_same_order(self, loop_nest_profile, clone_profile):
        ratio = (clone_profile.data_footprint_bytes
                 / loop_nest_profile.data_footprint_bytes)
        assert 0.2 <= ratio <= 5.0

    def test_branch_taken_rate_close(self, loop_nest_profile,
                                     clone_profile):
        def weighted_taken(profile):
            total = sum(b.count for b in profile.branches.values())
            return sum(b.taken_rate * b.count
                       for b in profile.branches.values()) / total
        assert weighted_taken(clone_profile) == pytest.approx(
            weighted_taken(loop_nest_profile), abs=0.15)

    def test_dependency_profile_short_distances(self, loop_nest_profile,
                                                clone_profile):
        # Both should be dominated by short dependences.
        original = loop_nest_profile.dep_fractions()
        clone = clone_profile.dep_fractions()
        assert sum(clone[:4]) == pytest.approx(sum(original[:4]), abs=0.35)
