"""Tests for the microarchitecture-dependent baseline synthesizer —
the prior art the paper improves upon."""

import pytest

from repro.core.baseline import (
    HashBranchPattern,
    MicroarchDependentSynthesizer,
    _TargetMissPlan,
)
from repro.core.synthesizer import SynthesisParameters
from repro.sim import run_program
from repro.uarch import CacheConfig, simulate_cache


class TestHashBranchPattern:
    def test_directions_vary(self):
        pattern = HashBranchPattern(multiplier=2654435761 & 0x7FFF | 1,
                                    shift=9)
        directions = [pattern.direction(i) for i in range(64)]
        assert 0 < sum(directions) < 64

    def test_emit_shape(self):
        pattern = HashBranchPattern(multiplier=12345, shift=9)
        lines = pattern.emit("Lz")
        assert any("mul" in line for line in lines)
        assert lines[-1].strip().startswith("bne")


class TestTargetMissPlan:
    def test_miss_fraction_routes_to_streaming(self):
        import random
        plan = _TargetMissPlan(miss_rate=0.5, cache_bytes=16 * 1024,
                               line_bytes=32)
        rng = random.Random(0)
        handles = [plan.allocate(0, rng) for _ in range(400)]
        streaming = sum(1 for handle in handles
                        if handle[0] == _TargetMissPlan.MISS)
        assert streaming == pytest.approx(200, abs=50)

    def test_zero_miss_rate_all_resident(self):
        import random
        plan = _TargetMissPlan(0.0, 16 * 1024, 32)
        rng = random.Random(0)
        assert all(plan.allocate(0, rng)[0] == _TargetMissPlan.HIT
                   for _ in range(100))

    def test_resident_region_bounded_by_cache(self):
        import random
        plan = _TargetMissPlan(0.1, 16 * 1024, 32)
        rng = random.Random(1)
        for _ in range(100):
            plan.allocate(0, rng)
        plan.finalize()
        hit = plan.clusters[_TargetMissPlan.HIT]
        assert hit.region <= 16 * 1024


class TestBaselineSynthesis:
    @pytest.fixture(scope="class")
    def baseline_result(self, loop_nest_profile):
        synthesizer = MicroarchDependentSynthesizer(
            loop_nest_profile, target_miss_rate=0.3,
            target_mispredict_rate=0.1,
            parameters=SynthesisParameters(dynamic_instructions=30_000))
        return synthesizer.synthesize()

    def test_produces_runnable_program(self, baseline_result):
        trace = run_program(baseline_result.program,
                            max_instructions=2_000_000)
        assert len(trace) > 10_000

    def test_matches_target_on_profiled_cache(self, baseline_result):
        trace = run_program(baseline_result.program,
                            max_instructions=2_000_000)
        stats = simulate_cache(trace.memory_addresses(),
                               CacheConfig(16 * 1024, 2, 32))
        assert stats.miss_rate == pytest.approx(0.3, abs=0.12)

    def test_fails_off_profile_config(self, baseline_result):
        """The paper's motivating observation: a miss-rate-tuned clone
        degrades when the cache changes.  Shrinking the cache 64x barely
        moves its miss rate (the resident buffer still mostly fits
        nothing new misses), unlike any real workload."""
        trace = run_program(baseline_result.program,
                            max_instructions=2_000_000)
        addresses = trace.memory_addresses()
        big = simulate_cache(addresses, CacheConfig(16 * 1024, 2, 32))
        tiny = simulate_cache(addresses, CacheConfig(256, 2, 32))
        # On the tiny cache the resident buffer thrashes: miss rate jumps
        # far above the target in a configuration-dependent way.
        assert tiny.miss_rate > big.miss_rate

    def test_rate_clamping(self, loop_nest_profile):
        synthesizer = MicroarchDependentSynthesizer(
            loop_nest_profile, target_miss_rate=2.0,
            target_mispredict_rate=0.9)
        assert synthesizer.target_miss_rate == 1.0
        assert synthesizer.target_mispredict_rate == 0.5
