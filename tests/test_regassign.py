"""Tests for round-robin register assignment (paper step 10)."""

import pytest

from repro.core.regassign import CloneRegisterFile, RoundRobinFile


class TestRoundRobinFile:
    def test_dest_cycles_through_pool(self):
        rrf = RoundRobinFile(pool=[10, 11, 12], anchors=[2])
        dests = [rrf.allocate_dest(i) for i in range(7)]
        assert dests == [10, 11, 12, 10, 11, 12, 10]

    def test_source_realizes_exact_distance(self):
        rrf = RoundRobinFile(pool=[10, 11, 12, 13], anchors=[2])
        for position in range(4):
            rrf.allocate_dest(position)
        # Consumer at position 4 wanting distance 2 -> producer at 2.
        assert rrf.source_for(4, 2) == 12

    def test_source_prefers_latest_at_or_before(self):
        rrf = RoundRobinFile(pool=[10, 11], anchors=[2])
        rrf.allocate_dest(0)
        rrf.allocate_dest(5)
        # Desired position 3: latest producer at/below is position 0.
        assert rrf.source_for(6, 3) == 10

    def test_overwritten_producer_falls_to_anchor(self):
        rrf = RoundRobinFile(pool=[10, 11], anchors=[2, 3])
        for position in range(6):
            rrf.allocate_dest(position)
        # Distance 5 -> producer at position 1, overwritten at position 3.
        assert rrf.source_for(6, 5) in (2, 3)

    def test_no_producer_yet_falls_to_anchor(self):
        rrf = RoundRobinFile(pool=[10], anchors=[5])
        assert rrf.source_for(0, 3) == 5

    def test_anchors_rotate(self):
        rrf = RoundRobinFile(pool=[10], anchors=[5, 6])
        assert rrf.source_for(0, 1) == 5
        assert rrf.source_for(0, 1) == 6
        assert rrf.source_for(0, 1) == 5

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinFile(pool=[], anchors=[1])


class TestCloneRegisterFile:
    def test_layout_disjoint(self):
        regs = CloneRegisterFile()
        pointers = {regs.pointer(i) for i in range(8)}
        countdowns = {regs.countdown(i) for i in range(8)}
        pool = set(regs.int_file.pool)
        special = {0, regs.COUNTER, regs.LIMIT, regs.SCRATCH, regs.RNG}
        groups = [pointers, countdowns, pool, special]
        for i, a in enumerate(groups):
            for b in groups[i + 1:]:
                assert not (a & b), f"overlap between {a} and {b}"

    def test_all_int_registers_below_32(self):
        regs = CloneRegisterFile()
        assert all(r < 32 for r in regs.int_file.pool)
        assert all(r < 32 for r in regs.int_file.anchors)

    def test_fp_pool_is_fp(self):
        regs = CloneRegisterFile()
        assert all(r >= 32 for r in regs.fp_file.pool)
        assert all(r >= 32 for r in regs.fp_file.anchors)

    def test_cluster_limit(self):
        regs = CloneRegisterFile()
        with pytest.raises(ValueError):
            regs.pointer(8)
        with pytest.raises(ValueError):
            regs.countdown(9)

    def test_names(self):
        regs = CloneRegisterFile()
        assert regs.pointer_name(0) == "r4"
        assert regs.countdown_name(0) == "r12"
