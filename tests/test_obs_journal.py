"""Event journal: per-pid files, concurrent writers, merged reads."""

import json
import multiprocessing
import os

import pytest

from repro.obs.journal import (
    JOURNAL_DIR_ENV,
    Journal,
    active_journal,
    configure_journal,
    emit_event,
    emit_metric_deltas,
    read_journal,
    suspend_journal,
)
from repro.obs.metrics import REGISTRY
from repro.obs.trace import reset_trace_state


@pytest.fixture(autouse=True)
def _clean_journal_state():
    yield
    configure_journal(None)
    reset_trace_state()
    os.environ.pop(JOURNAL_DIR_ENV, None)


class TestJournalWriter:
    def test_emit_and_read_round_trip(self, tmp_path):
        run_dir = str(tmp_path / "run")
        configure_journal(run_dir)
        emit_event("run_begin", command="test")
        emit_event("progress", done=3, total=10, unit="configs")
        configure_journal(None)
        merged = read_journal(run_dir)
        assert [event["kind"] for event in merged.events] \
            == ["run_begin", "progress"]
        assert merged.events[0]["command"] == "test"
        assert merged.events[1]["done"] == 3
        assert merged.skipped == 0

    def test_one_file_per_pid(self, tmp_path):
        run_dir = str(tmp_path / "run")
        journal = configure_journal(run_dir)
        emit_event("run_begin")
        assert os.path.basename(journal.path) \
            == f"journal-{os.getpid()}.jsonl"
        assert os.path.exists(journal.path)

    def test_envelope_fields_present_and_monotonic_seq(self, tmp_path):
        run_dir = str(tmp_path / "run")
        configure_journal(run_dir)
        for index in range(5):
            emit_event("progress", done=index)
        configure_journal(None)
        merged = read_journal(run_dir)
        for event in merged.events:
            assert {"ts", "pid", "seq", "kind"} <= set(event)
        assert [event["seq"] for event in merged.events] == [1, 2, 3, 4, 5]

    def test_zero_cost_when_off(self, tmp_path, monkeypatch):
        monkeypatch.delenv(JOURNAL_DIR_ENV, raising=False)
        configure_journal(None)
        assert active_journal() is None
        emit_event("progress", done=1)  # must not raise or write

    def test_fresh_removes_stale_journals(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        stale = run_dir / "journal-99999.jsonl"
        stale.write_text('{"ts": 1, "pid": 99999, "seq": 1, '
                         '"kind": "run_begin"}\n')
        configure_journal(str(run_dir), fresh=True)
        emit_event("run_begin")
        configure_journal(None)
        assert not stale.exists()
        merged = read_journal(str(run_dir))
        assert merged.pids() == [os.getpid()]

    def test_worker_resolves_journal_from_environment(self, tmp_path,
                                                      monkeypatch):
        run_dir = str(tmp_path / "run")
        configure_journal(None)
        monkeypatch.setenv(JOURNAL_DIR_ENV, run_dir)
        # Simulates a pool worker: nobody called configure_journal here.
        journal = active_journal()
        assert journal is not None
        assert journal.run_dir == run_dir
        configure_journal(None)

    def test_suspend_journal_hides_env_and_active(self, tmp_path):
        run_dir = str(tmp_path / "run")
        configure_journal(run_dir)
        emit_event("run_begin")
        with suspend_journal():
            assert active_journal() is None
            assert os.environ.get(JOURNAL_DIR_ENV) is None
            emit_event("progress", done=1)  # dropped
        emit_event("run_end")
        configure_journal(None)
        kinds = [event["kind"] for event in read_journal(run_dir).events]
        assert kinds == ["run_begin", "run_end"]

    def test_emit_survives_unwritable_directory(self, tmp_path):
        journal = Journal(str(tmp_path / "missing" / "deeper"))
        journal.emit("run_begin")  # creates the directory
        assert os.path.exists(journal.path)


class TestMergedReads:
    def test_torn_final_line_skipped_and_counted(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        good = {"ts": 1.0, "pid": 1, "seq": 1, "kind": "run_begin"}
        (run_dir / "journal-1.jsonl").write_text(
            json.dumps(good) + "\n" + '{"ts": 2.0, "pid": 1, "se')
        merged = read_journal(str(run_dir))
        assert len(merged.events) == 1
        assert merged.skipped == 1

    def test_non_envelope_lines_skipped(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "journal-1.jsonl").write_text(
            '{"kind": "run_begin"}\n[1, 2]\n')
        merged = read_journal(str(run_dir))
        assert len(merged.events) == 0
        assert merged.skipped == 2

    def test_missing_run_dir_is_empty_not_error(self, tmp_path):
        merged = read_journal(str(tmp_path / "nope"))
        assert len(merged.events) == 0
        assert merged.files == []

    def test_merge_orders_by_time_then_pid_then_seq(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "journal-2.jsonl").write_text("\n".join(
            json.dumps({"ts": ts, "pid": 2, "seq": seq, "kind": "progress"})
            for seq, ts in enumerate([1.0, 3.0], start=1)) + "\n")
        (run_dir / "journal-1.jsonl").write_text("\n".join(
            json.dumps({"ts": ts, "pid": 1, "seq": seq, "kind": "progress"})
            for seq, ts in enumerate([2.0, 4.0], start=1)) + "\n")
        merged = read_journal(str(run_dir))
        assert [(event["ts"], event["pid"]) for event in merged.events] \
            == [(1.0, 2), (2.0, 1), (3.0, 2), (4.0, 1)]

    def test_run_info_and_task_counts(self, tmp_path):
        run_dir = str(tmp_path / "run")
        configure_journal(run_dir)
        emit_event("run_begin", command="compare")
        emit_event("tasks", total=2, jobs=2)
        emit_event("task_done", task=0)
        emit_event("task_done", task=1)
        emit_event("run_end", exit_code=0, wall_seconds=1.5)
        configure_journal(None)
        merged = read_journal(run_dir)
        begin, end = merged.run_info()
        assert begin["command"] == "compare"
        assert end["exit_code"] == 0
        assert merged.task_counts() == (2, 2)

    def test_open_spans_tracks_unclosed_only(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        events = [
            {"ts": 1.0, "pid": 7, "seq": 1, "kind": "span_open",
             "span": "7-1", "parent": None, "name": "outer"},
            {"ts": 2.0, "pid": 7, "seq": 2, "kind": "span_open",
             "span": "7-2", "parent": "7-1", "name": "inner"},
            {"ts": 3.0, "pid": 7, "seq": 3, "kind": "span_close",
             "span": "7-2", "parent": "7-1", "name": "inner",
             "wall_s": 1.0},
        ]
        (run_dir / "journal-7.jsonl").write_text(
            "".join(json.dumps(event) + "\n" for event in events))
        open_spans = read_journal(str(run_dir)).open_spans()
        assert list(open_spans) == [7]
        assert [event["name"] for event in open_spans[7]] == ["outer"]

    def test_latest_progress_per_pid_and_unit(self, tmp_path):
        run_dir = str(tmp_path / "run")
        configure_journal(run_dir)
        emit_event("progress", done=1, total=9, unit="configs")
        emit_event("progress", done=5, total=9, unit="configs")
        configure_journal(None)
        latest = read_journal(run_dir).latest_progress()
        ((_, unit), event), = latest.items()
        assert unit == "configs"
        assert event["done"] == 5


def _hammer(run_dir, worker, count):
    configure_journal(run_dir)
    for index in range(count):
        emit_event("progress", done=index, worker=worker)
    configure_journal(None)


class TestConcurrentWriters:
    def test_concurrent_processes_never_tear_lines(self, tmp_path):
        run_dir = str(tmp_path / "run")
        configure_journal(run_dir)
        emit_event("run_begin")
        configure_journal(None)
        workers = [multiprocessing.Process(target=_hammer,
                                           args=(run_dir, worker, 200))
                   for worker in range(2)]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=60)
            assert process.exitcode == 0
        merged = read_journal(run_dir)
        assert merged.skipped == 0
        assert len(merged.events) == 1 + 2 * 200
        assert len(merged.pids()) == 3
        # Each writer's own sequence survives the merge in order.
        for pid in merged.pids():
            seqs = [event["seq"] for event in merged.events
                    if event["pid"] == pid]
            assert seqs == sorted(seqs)
            assert len(seqs) == len(set(seqs))


class TestMetricDeltas:
    def test_deltas_emitted_once_per_change(self, tmp_path):
        run_dir = str(tmp_path / "run")
        configure_journal(run_dir)
        counter = REGISTRY.counter("test.journal.delta")
        base = counter.value
        counter.inc(3)
        emit_metric_deltas()
        emit_metric_deltas()  # no change since baseline: no second event
        counter.inc(2)
        emit_metric_deltas()
        configure_journal(None)
        metrics = read_journal(run_dir).of_kind("metrics")
        deltas = [event["deltas"].get("test.journal.delta")
                  for event in metrics
                  if "test.journal.delta" in event["deltas"]]
        assert deltas == ([base + 3, 2] if base else [3, 2])
