"""Incremental re-simulation: planner classification + bit-identity.

Two contracts:

* the planner's reuse/rebuild verdicts match the sweep engine's actual
  artifact keying (unit tests per knob class);
* an :class:`IncrementalSession` walking a *random* sequence of
  single-knob config edits stays field-for-field identical to a cold
  ``PipelineModel.run`` of every visited config — the property the
  ≥20x re-sweep speedup is only allowed to exist under.

Plus the fig4-outlier profile-delta path: a crc32 clone re-synthesized
from a perturbed profile is a planned full rebuild, and its incremental
re-simulation still matches the cold reference exactly.
"""

import dataclasses
import random

import pytest

from repro.core import make_clone, profile_trace
from repro.core.synthesizer import SynthesisParameters
from repro.sim import FunctionalSimulator
from repro.uarch import (
    BASE_CONFIG,
    IncrementalSession,
    plan_incremental,
    plan_profile_delta,
    simulate_pipeline,
)
from repro.uarch.cache import CacheConfig
from repro.workloads import build_workload

CAP = 20_000

#: Single-knob edit generators, one per artifact-dependence class.
KNOBS = [
    ("rob_size", lambda rng: {"rob_size": rng.choice([8, 16, 24, 32])}),
    ("lsq_size", lambda rng: {"lsq_size": rng.choice([4, 8, 16])}),
    ("width", lambda rng: {"width": rng.choice([1, 2, 4])}),
    ("in_order", lambda rng: {"in_order": rng.choice([True, False])}),
    ("l1d", lambda rng: {"l1d": CacheConfig(
        rng.choice([4096, 8192, 16384]), rng.choice([1, 2]), 32)}),
    ("l2_latency", lambda rng: {"l2_latency": rng.choice([6, 8, 12])}),
    ("predictor", lambda rng: {"predictor": rng.choice(
        ["gap", "nottaken", "bimodal"])}),
    ("mispredict_penalty",
     lambda rng: {"mispredict_penalty": rng.choice([3, 5, 8])}),
    ("latency_fmul", lambda rng: {"latency_fmul": rng.choice([2, 4, 6])}),
]


def result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("wall_seconds")
    return fields


@pytest.fixture(scope="module")
def crc32_trace():
    return FunctionalSimulator(build_workload("crc32")).run(
        max_instructions=2_000_000, trace=True)


class TestPlanClassification:
    def test_cache_knob_rebuilds_cache_bank_only(self):
        edited = BASE_CONFIG.renamed("half-l1d", l1d=CacheConfig(
            BASE_CONFIG.l1d.size // 2, BASE_CONFIG.l1d.assoc,
            BASE_CONFIG.l1d.line))
        plan = plan_incremental(BASE_CONFIG, edited)
        assert plan.rebuilt == ("cache_bank",)
        assert set(plan.reused) == {"digest", "pred_bank", "kernel"}
        assert "l1d" in plan.changed_fields
        assert not plan.full_rebuild

    def test_predictor_knob_rebuilds_pred_bank_only(self):
        plan = plan_incremental(
            BASE_CONFIG, BASE_CONFIG.renamed("nt", predictor="nottaken"))
        assert plan.rebuilt == ("pred_bank",)

    def test_shape_knob_rebuilds_kernel_only(self):
        plan = plan_incremental(
            BASE_CONFIG, BASE_CONFIG.renamed("w2", width=2))
        assert plan.rebuilt == ("kernel",)

    def test_ring_resize_within_pow2_reuses_kernel(self):
        # 16 -> 32 entries keeps the ring power-of-two, so only the
        # runtime parameter tuple changes; no artifact is rebuilt.
        plan = plan_incremental(
            BASE_CONFIG, BASE_CONFIG.renamed("rob32", rob_size=32))
        assert plan.rebuilt == ()
        assert plan.params_changed

    def test_latency_knob_rebuilds_nothing(self):
        plan = plan_incremental(
            BASE_CONFIG, BASE_CONFIG.renamed("slow", latency_fmul=6))
        assert plan.rebuilt == ()
        assert plan.params_changed

    def test_rename_only_changes_nothing(self):
        plan = plan_incremental(BASE_CONFIG, BASE_CONFIG.renamed("alias"))
        assert plan.changed_fields == ("name",)
        assert plan.rebuilt == ()
        assert not plan.params_changed

    def test_digest_always_survives_config_edits(self):
        edited = BASE_CONFIG.renamed(
            "everything", width=4, rob_size=64, predictor="nottaken",
            l1d=CacheConfig(4096, 1, 32), memory_latency=80)
        plan = plan_incremental(BASE_CONFIG, edited)
        assert "digest" in plan.reused
        assert set(plan.rebuilt) == {"cache_bank", "pred_bank", "kernel"}


class TestRandomKnobWalk:
    def test_single_knob_walk_matches_cold_reference(self, crc32_trace):
        rng = random.Random(20260808)
        session = IncrementalSession(crc32_trace, max_instructions=CAP)
        config = BASE_CONFIG
        session.run(config)
        for step in range(12):
            knob, generate = rng.choice(KNOBS)
            config = config.renamed(f"step-{step}-{knob}",
                                    **generate(rng))
            incremental = session.run(config)
            plan = session.last_plan
            assert set(plan.reused) | set(plan.rebuilt) \
                == {"digest", "cache_bank", "pred_bank", "kernel"}
            cold = simulate_pipeline(crc32_trace, config,
                                     max_instructions=CAP)
            assert result_fields(incremental) == result_fields(cold), \
                f"diverged at step {step} ({knob})"


class TestProfileDelta:
    def test_identical_profiles_reuse_everything(self, crc32_trace):
        profile = profile_trace(crc32_trace)
        plan = plan_profile_delta(profile, profile)
        assert plan.changed_fields == ()
        assert plan.rebuilt == ()

    def test_rename_is_not_a_rebuild(self, crc32_trace):
        profile = profile_trace(crc32_trace)
        relabeled = dataclasses.replace(profile, name="crc32-copy")
        plan = plan_profile_delta(profile, relabeled)
        assert plan.changed_fields == ("name",)
        assert plan.rebuilt == ()

    def test_material_change_is_full_rebuild(self, crc32_trace):
        profile = profile_trace(crc32_trace)
        perturbed = dataclasses.replace(
            profile, total_instructions=profile.total_instructions + 1)
        plan = plan_profile_delta(profile, perturbed)
        assert plan.full_rebuild
        assert set(plan.rebuilt) \
            == {"digest", "cache_bank", "pred_bank", "kernel"}

    def test_crc32_clone_refinement_equivalence(self, crc32_trace):
        """A perturbed-profile clone re-times bit-identically.

        The refinement loop's profile axis: perturb the profile,
        re-synthesize, re-simulate.  The planner calls it a full
        rebuild, and the rebuilt path must still match the cold
        reference field for field.
        """
        profile = profile_trace(crc32_trace)
        perturbed = dataclasses.replace(
            profile, name="crc32-refined",
            data_footprint_bytes=profile.data_footprint_bytes * 2)
        plan = plan_profile_delta(profile, perturbed)
        assert plan.full_rebuild

        clone = make_clone(perturbed,
                           SynthesisParameters(dynamic_instructions=30_000))
        clone_trace = FunctionalSimulator(clone.program).run(
            max_instructions=2_000_000, trace=True)
        session = IncrementalSession(clone_trace, max_instructions=CAP)
        for config in (BASE_CONFIG,
                       BASE_CONFIG.renamed("rob32", rob_size=32)):
            incremental = session.run(config)
            cold = simulate_pipeline(clone_trace, config,
                                     max_instructions=CAP)
            assert result_fields(incremental) == result_fields(cold)
