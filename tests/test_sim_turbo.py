"""Backend differential-equivalence suite: turbo/native vs the interpreter.

The accelerated backends — the block-compiling Python backend
(`repro.sim.turbo`) and the C-compiled engine (`repro.sim.native`) —
promise *bit-identity* with the reference interpreter.  This suite
enforces the whole contract, parametrized over every backend the host
can run:

* identical trace arrays, final registers, memory images, and retired
  counts on all 23 corpus kernels and a synthesized clone;
* identical `SimulationError` semantics — the instruction cap (including
  a cap that lands exactly on a translation-unit boundary), memory
  range errors, and pc-out-of-range context;
* identical heartbeat telemetry, including the edge case where the
  heartbeat boundary coincides with ``max_instructions``;
* graceful fallback: explicit ``native`` still runs (on turbo) when the
  toolchain is gated off or there is no C compiler.

It doubles as the tier-1 CI gate for codegen regressions.
"""

import io
import json

import numpy as np
import pytest

from repro.isa import assemble
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.native import toolchain
from repro.obs import logging as obslog
from repro.sim import (
    BACKENDS,
    FunctionalSimulator,
    SimulationError,
    resolve_backend,
    run_program,
)
from repro.sim import functional
from repro.sim import native
from repro.sim.turbo import AUTO_MIN_STATIC, turbo_program
from repro.workloads import build_workload, workload_names

KERNELS = workload_names()

#: The accelerated backends this host can differentially test against
#: the interpreter.  ``native`` joins when a C compiler is present.
DIFF_BACKENDS = ["turbo"] + (["native"] if native.available() else [])


def _run(program, backend, max_instructions=5_000_000, trace=True):
    simulator = FunctionalSimulator(program, backend=backend)
    result = simulator.run(max_instructions=max_instructions, trace=trace)
    return simulator, result


def assert_equivalent(program, backend, max_instructions=5_000_000):
    """Run interp + ``backend`` and compare every architected observable."""
    interp, interp_trace = _run(program, "interp", max_instructions)
    fast, fast_trace = _run(program, backend, max_instructions)
    assert np.array_equal(interp_trace.pcs, fast_trace.pcs)
    assert np.array_equal(interp_trace.addrs, fast_trace.addrs)
    assert np.array_equal(interp_trace.taken, fast_trace.taken)
    assert interp.regs == fast.regs
    assert bytes(interp.memory.data) == bytes(fast.memory.data)
    assert interp.instructions_executed == fast.instructions_executed
    assert interp.halted and fast.halted


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_explicit_choices_pass_through(self):
        assert resolve_backend("turbo") == "turbo"
        assert resolve_backend("interp") == "interp"
        assert resolve_backend("native") == "native"

    def test_env_var_consulted_when_unset(self):
        assert resolve_backend(None, environ={"REPRO_SIM_BACKEND":
                                              "interp"}) == "interp"
        assert resolve_backend(None, environ={"REPRO_SIM_BACKEND":
                                              " TURBO "}) == "turbo"

    def test_auto_resolution_order_for_real_programs(self):
        # Resolution order is native (when usable) then turbo; the
        # interpreter only for programs below the codegen threshold.
        program = build_workload("crc32")
        expected = "native" if native.usable(program) else "turbo"
        assert resolve_backend("auto", program) == expected
        assert resolve_backend(None, program, environ={}) == expected

    def test_auto_falls_back_to_turbo_when_native_gated_off(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.reset()
        try:
            program = build_workload("crc32")
            assert resolve_backend("auto", program) == "turbo"
        finally:
            native.reset()

    def test_auto_keeps_tiny_programs_on_the_interpreter(self):
        tiny = assemble("    .text\nmain:\n    halt\n", name="tiny")
        assert len(tiny.instructions) < AUTO_MIN_STATIC
        assert resolve_backend("auto", tiny) == "interp"

    def test_auto_threshold_env_tunable(self):
        # A threshold above the kernel's static size keeps auto on the
        # interpreter; zero sends even a one-instruction program to a
        # compiled backend.
        program = build_workload("crc32")
        high = {"REPRO_SIM_AUTO_THRESHOLD":
                str(len(program.instructions) + 1)}
        assert resolve_backend("auto", program, environ=high) == "interp"
        tiny = assemble("    .text\nmain:\n    halt\n", name="tiny-thr")
        low = {"REPRO_SIM_AUTO_THRESHOLD": "0"}
        assert resolve_backend("auto", tiny, environ=low) != "interp"

    def test_auto_threshold_rejects_garbage(self):
        with pytest.raises(ValueError, match="REPRO_SIM_AUTO_THRESHOLD"):
            resolve_backend("auto", build_workload("crc32"),
                            environ={"REPRO_SIM_AUTO_THRESHOLD": "many"})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator backend"):
            resolve_backend("bogus")
        with pytest.raises(ValueError, match="bogus"):
            run_program(build_workload("crc32"), backend="bogus")

    def test_backends_tuple_is_the_cli_contract(self):
        assert BACKENDS == ("auto", "native", "turbo", "interp")


# ----------------------------------------------------------------------
# Graceful fallback (REPRO_NATIVE off / no C compiler)
# ----------------------------------------------------------------------
FALLBACK_SOURCE = """
    .text
main:
    li   r5, 0
    li   r6, 200
""" + "    addi r7, r7, 1\n" * 16 + """
loop:
    addi r5, r5, 3
    blt  r5, r6, loop
    halt
"""


class TestNativeFallback:
    def test_explicit_native_runs_when_gated_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.reset()
        try:
            program = assemble(FALLBACK_SOURCE, name="gated-off")
            assert not native.available()
            assert_equivalent(program, "native")
        finally:
            native.reset()

    def test_explicit_native_runs_without_a_compiler(self, monkeypatch,
                                                     tmp_path):
        # A fresh cache dir guarantees the probe really invokes the
        # (nonexistent) compiler instead of reusing the session cache's
        # probe library.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(toolchain, "CC", ("repro-no-such-cc",))
        native.reset()
        try:
            program = assemble(FALLBACK_SOURCE, name="no-cc")
            assert not native.available()
            assert resolve_backend("auto", program) == "turbo"
            assert_equivalent(program, "native")
        finally:
            native.reset()

    def test_untranslatable_program_falls_back(self):
        # A hand-built program the translator rejects (integer opcode
        # reading an FP register) still runs under backend=native.
        instructions = [Instruction("addi", rd=5, rs1=40, imm=1)
                        for _ in range(AUTO_MIN_STATIC + 1)]
        instructions.append(Instruction("halt"))
        program = Program(instructions, name="untranslatable")
        assert not native.translatable(program)
        assert resolve_backend("auto", program) == "turbo"
        simulator, _ = _run(program, "native")
        assert simulator.halted


# ----------------------------------------------------------------------
# Corpus-wide differential equivalence
# ----------------------------------------------------------------------
class TestCorpusEquivalence:
    @pytest.mark.parametrize("backend", DIFF_BACKENDS)
    @pytest.mark.parametrize("name", KERNELS)
    def test_kernel_bit_identical(self, name, backend):
        assert_equivalent(build_workload(name), backend)

    @pytest.mark.parametrize("backend", DIFF_BACKENDS)
    def test_clone_bit_identical(self, loop_nest_clone, backend):
        assert_equivalent(loop_nest_clone.program, backend,
                          max_instructions=2_000_000)

    @pytest.mark.parametrize("backend", DIFF_BACKENDS)
    def test_traceless_run_matches(self, loop_nest_program, backend):
        interp, interp_count = _run(loop_nest_program, "interp",
                                    trace=False)
        fast, fast_count = _run(loop_nest_program, backend, trace=False)
        assert interp_count == fast_count
        assert interp.regs == fast.regs
        assert bytes(interp.memory.data) == bytes(fast.memory.data)

    def test_codegen_is_cached_per_program(self, loop_nest_program):
        simulator = FunctionalSimulator(loop_nest_program)
        simulator.run(trace=True, backend="turbo")
        compiled = turbo_program(simulator)
        units_after_first = compiled.units_compiled
        assert units_after_first > 0
        again = FunctionalSimulator(loop_nest_program)
        again.run(trace=True, backend="turbo")
        assert turbo_program(again) is compiled
        assert compiled.units_compiled == units_after_first


# ----------------------------------------------------------------------
# Error-path equivalence
# ----------------------------------------------------------------------
def _error_from(program, backend, max_instructions=5_000_000):
    simulator = FunctionalSimulator(program, backend=backend)
    with pytest.raises(SimulationError) as excinfo:
        simulator.run(max_instructions=max_instructions, trace=True)
    return excinfo.value


def _same_error(program, backend, max_instructions=5_000_000):
    interp = _error_from(program, "interp", max_instructions)
    fast = _error_from(program, backend, max_instructions)
    assert str(interp) == str(fast)
    assert interp.pc == fast.pc
    assert interp.instructions == fast.instructions
    assert interp.block == fast.block
    return interp


@pytest.mark.parametrize("backend", DIFF_BACKENDS)
class TestErrorEquivalence:
    @pytest.mark.parametrize("cap", [1, 2, 7, 100, 12_345])
    def test_cap_exceeded_mid_run(self, loop_nest_program, cap, backend):
        error = _same_error(loop_nest_program, backend,
                            max_instructions=cap)
        assert "instruction cap exceeded" in str(error)
        assert error.instructions == cap + 1

    def test_cap_exactly_on_unit_boundary(self, backend):
        # A 3-instruction loop body: every unit dispatch retires exactly
        # 3 instructions, so a cap that is a multiple of 3 is reached
        # exactly as a unit completes and exceeded on the next unit's
        # first instruction — the accounting all backends must agree on.
        program = assemble("""
    .text
main:
    li   r5, 0
loop:
    addi r5, r5, 1
    j    loop
""", name="spin")
        for cap in (30, 31, 32):
            error = _same_error(program, backend, max_instructions=cap)
            assert error.instructions == cap + 1

    def test_cap_reached_but_not_exceeded_is_clean(self, backend):
        # A cap of exactly the program's retired count: clean completion
        # in every backend (the cap triggers only when *exceeded*).
        program = assemble(SPIN_SOURCE.format(iters=9), name="exact")
        reference, _ = _run(program, "interp")
        total = reference.instructions_executed
        for chosen in ("interp", backend):
            simulator, _ = _run(program, chosen, max_instructions=total)
            assert simulator.instructions_executed == total

    def test_memory_out_of_range(self, backend):
        program = assemble("""
    .text
main:
    lui  r5, 65535
    lw   r6, 0(r5)
    halt
""", name="oob")
        interp = _error_from(program, "interp")
        fast = _error_from(program, backend)
        assert str(interp) == str(fast)
        assert "lw out of range" in str(interp)

    def test_pc_out_of_range_via_indirect_jump(self, backend):
        program = assemble("""
    .text
main:
    li   r5, 4
    jr   r5
    halt
""", name="badjr")
        interp = _error_from(program, "interp")
        fast = _error_from(program, backend)
        assert str(interp) == str(fast)
        assert "pc out of range" in str(interp)
        assert interp.pc == fast.pc
        assert interp.instructions == fast.instructions


# ----------------------------------------------------------------------
# Heartbeat / cap interaction (satellite: check_limit edge cases)
# ----------------------------------------------------------------------
@pytest.fixture
def log_sink():
    from repro.obs.metrics import REGISTRY
    buffer = io.StringIO()
    old_level = obslog.current_level()
    old_stream = obslog._CONFIG.stream
    old_json = obslog._CONFIG.json_lines
    was_enabled = REGISTRY.enabled
    REGISTRY.enable()  # heartbeats are gated on telemetry being on
    obslog.configure(level=obslog.INFO, stream=buffer, json_lines=True)
    yield buffer
    obslog.configure(level=old_level, json_lines=old_json)
    obslog._CONFIG.stream = old_stream
    if not was_enabled:
        REGISTRY.disable()


def _heartbeats(buffer):
    events = []
    for line in buffer.getvalue().splitlines():
        record = json.loads(line)
        if record["event"] == "sim.heartbeat":
            events.append((record["instructions"], record["pc"]))
    return events


#: Counted spin loop; ``.format(iters=N)`` sets the iteration count
#: (total retired = 2 setup + 2*N loop + 1 halt).
SPIN_SOURCE = """
    .text
main:
    li   r5, 0
    li   r6, {iters}
loop:
    addi r5, r5, 1
    blt  r5, r6, loop
    halt
"""


class TestHeartbeatEquivalence:
    @pytest.mark.parametrize("backend", ["interp"] + DIFF_BACKENDS)
    def test_heartbeat_fires_at_interval(self, log_sink, monkeypatch,
                                         backend):
        monkeypatch.setattr(functional, "HEARTBEAT_INTERVAL", 1000)
        program = assemble(SPIN_SOURCE.format(iters=4000), name="hb")
        _run(program, backend, max_instructions=10_000)
        events = _heartbeats(log_sink)
        assert events
        assert [instructions for instructions, _pc in events] == [
            1000 * (i + 1) for i in range(len(events))]

    @pytest.mark.parametrize("backend", DIFF_BACKENDS)
    def test_heartbeat_streams_identical(self, log_sink, monkeypatch,
                                         backend):
        monkeypatch.setattr(functional, "HEARTBEAT_INTERVAL", 997)
        program = assemble(SPIN_SOURCE.format(iters=5000), name="hb-diff")
        _, interp_trace = _run(program, "interp", max_instructions=500_000)
        interp_events = _heartbeats(log_sink)
        log_sink.truncate(0)
        log_sink.seek(0)
        _, fast_trace = _run(program, backend, max_instructions=500_000)
        assert _heartbeats(log_sink) == interp_events
        assert interp_events  # the run is long enough to heartbeat
        assert np.array_equal(interp_trace.pcs, fast_trace.pcs)

    @pytest.mark.parametrize("backend", ["interp"] + DIFF_BACKENDS)
    def test_heartbeat_boundary_equals_cap(self, log_sink, monkeypatch,
                                           backend):
        # next_heartbeat == max_instructions: the heartbeat at N retires
        # fires (N is within the cap), and the cap error follows at N+1.
        monkeypatch.setattr(functional, "HEARTBEAT_INTERVAL", 2000)
        program = assemble(SPIN_SOURCE.format(iters=2000), name="hb-cap")
        error = _error_from(program, backend, max_instructions=2000)
        assert error.instructions == 2001
        events = _heartbeats(log_sink)
        assert [instructions for instructions, _pc in events] == [2000]

    @pytest.mark.parametrize("backend", DIFF_BACKENDS)
    def test_heartbeat_boundary_equals_cap_identical(self, log_sink,
                                                     monkeypatch, backend):
        monkeypatch.setattr(functional, "HEARTBEAT_INTERVAL", 2000)
        program = assemble(SPIN_SOURCE.format(iters=2000),
                           name="hb-cap-diff")
        interp = _error_from(program, "interp", max_instructions=2000)
        interp_events = _heartbeats(log_sink)
        log_sink.truncate(0)
        log_sink.seek(0)
        fast = _error_from(program, backend, max_instructions=2000)
        assert str(interp) == str(fast)
        assert _heartbeats(log_sink) == interp_events


# ----------------------------------------------------------------------
# jal link-register regression (satellite: the rd=0 guard)
# ----------------------------------------------------------------------
class TestJalZeroLink:
    @pytest.mark.parametrize("backend", ["interp"] + DIFF_BACKENDS)
    def test_jal_with_rd_zero_keeps_zero_hardwired(self, backend):
        # The assembler always links jal through r31; build the rd=0
        # encoding directly, as a synthesizer bug or hand-built program
        # could.  Pad past AUTO_MIN_STATIC so the auto heuristic is moot.
        instructions = [Instruction("addi", rd=5, rs1=0, imm=7),
                        Instruction("jal", rd=0, target=2)]
        instructions += [Instruction("addi", rd=6, rs1=6, imm=1)
                         for _ in range(20)]
        instructions.append(Instruction("halt"))
        program = Program(instructions, name="jal-r0")
        simulator, _ = _run(program, backend)
        assert simulator.regs[0] == 0
        assert simulator.regs[5] == 7

    @pytest.mark.parametrize("backend", DIFF_BACKENDS)
    def test_jal_links_through_real_register(self, backend):
        program = assemble("""
    .text
main:
    jal  sub
    halt
sub:
    jr   r31
""", name="jal-link")
        interp, interp_trace = _run(program, "interp")
        fast, fast_trace = _run(program, backend)
        assert interp.regs == fast.regs
        assert interp.regs[31] == program.text_base + 4
        assert np.array_equal(interp_trace.pcs, fast_trace.pcs)
