"""Unit tests for the evaluation metrics."""


import pytest

from repro.evaluation import (
    format_table,
    mean_absolute_percentage_error,
    pearson,
    rank_vector,
    relative_error,
    spearman,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated(self):
        assert abs(pearson([1, 2, 1, 2], [5, 5, 6, 6])) < 1e-9

    def test_bounded(self):
        xs = [0.3, 1.7, 2.2, 9.1, 4.0]
        ys = [2.0, 0.1, 5.5, 3.3, 1.1]
        assert -1.0 <= pearson(xs, ys) <= 1.0

    def test_shift_and_scale_invariant(self):
        xs = [1.0, 4.0, 2.0, 8.0]
        ys = [0.5, 0.9, 0.3, 1.5]
        base = pearson(xs, ys)
        assert pearson([3 * x + 7 for x in xs], ys) == pytest.approx(base)

    def test_constant_series(self):
        assert pearson([1, 1, 1], [2, 3, 4]) == 0.0
        assert pearson([1, 1, 1], [5, 5, 5]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_too_short(self):
        with pytest.raises(ValueError):
            pearson([1], [1])


class TestRanks:
    def test_rank_vector_basic(self):
        assert rank_vector([30, 10, 20]) == [3.0, 1.0, 2.0]

    def test_rank_vector_descending(self):
        assert rank_vector([30, 10, 20], descending=True) == [1.0, 3.0, 2.0]

    def test_ties_averaged(self):
        assert rank_vector([5, 5, 1]) == [2.5, 2.5, 1.0]

    def test_spearman_monotonic(self):
        xs = [1, 2, 3, 4]
        ys = [1, 10, 100, 1000]  # nonlinear but monotone
        assert spearman(xs, ys) == pytest.approx(1.0)

    def test_spearman_reversed(self):
        assert spearman([1, 2, 3], [9, 5, 1]) == pytest.approx(-1.0)


class TestRelativeError:
    def test_zero_when_trends_match(self):
        # Real speeds up 2x, clone speeds up 2x.
        assert relative_error(2.0, 1.0, 4.0, 2.0) == pytest.approx(0.0)

    def test_paper_formula(self):
        # real ratio 2.0, synth ratio 1.8 -> |1.8-2.0|/2.0 = 0.1
        assert relative_error(2.0, 1.0, 1.8, 1.0) == pytest.approx(0.1)

    def test_symmetric_in_scale(self):
        a = relative_error(3.0, 1.5, 2.8, 1.5)
        b = relative_error(6.0, 3.0, 5.6, 3.0)
        assert a == pytest.approx(b)


class TestMape:
    def test_basic(self):
        assert mean_absolute_percentage_error(
            [1.0, 2.0], [1.1, 1.8]) == pytest.approx((0.1 + 0.1) / 2)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([0.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "value"],
                            [["a", 1.23456], ["bb", 2]],
                            float_format="{:.2f}")
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text
        assert "2" in lines[3]
        assert set(lines[1]) <= {"-", " "}
