"""Unit tests for the Memory model and DynamicTrace."""

import numpy as np
import pytest

from repro.sim import DynamicTrace, Memory, MemoryError_, run_program


class TestMemory:
    def test_data_image_placed_at_base(self):
        memory = Memory(data_image=b"\x01\x02\x03\x04", data_base=0x100,
                        size=0x1000)
        assert memory.read_word(0x100) == 0x04030201

    def test_image_too_large(self):
        with pytest.raises(MemoryError_):
            Memory(data_image=b"x" * 32, data_base=0, size=16)

    def test_word_round_trip_and_masking(self):
        memory = Memory(size=0x100)
        memory.write_word(0x10, 0x1_FFFF_FFFF)
        assert memory.read_word(0x10) == 0xFFFFFFFF

    def test_signed_read(self):
        memory = Memory(size=0x100)
        memory.write_word(0, -5)
        assert memory.read_word_signed(0) == -5

    def test_byte_ops(self):
        memory = Memory(size=0x100)
        memory.write_byte(3, 0x7F2)
        assert memory.read_byte(3) == 0xF2

    def test_double_round_trip(self):
        memory = Memory(size=0x100)
        memory.write_double(8, -0.125)
        assert memory.read_double(8) == -0.125

    def test_read_words(self):
        memory = Memory(size=0x100)
        for index, value in enumerate((10, -20, 30)):
            memory.write_word(index * 4, value)
        assert memory.read_words(0, 3) == [10, -20, 30]

    def test_bounds_checked(self):
        memory = Memory(size=0x100)
        with pytest.raises(MemoryError_):
            memory.read_word(0xFE)
        with pytest.raises(MemoryError_):
            memory.write_byte(0x100, 1)


class TestDynamicTrace:
    def test_length_mismatch_rejected(self, sum_program):
        with pytest.raises(ValueError):
            DynamicTrace(sum_program, [0, 1], [0], [0])

    def test_summary_counts(self, sum_program):
        trace = run_program(sum_program)
        summary = trace.summary()
        assert summary["instructions"] == len(trace)
        # 8 loop iterations: one lw each, plus final sw.
        assert summary["memory_ops"] == 9
        assert summary["branches"] == 8
        assert summary["taken_branches"] == 7

    def test_memory_addresses_in_dynamic_order(self, sum_program):
        trace = run_program(sum_program)
        addresses = trace.memory_addresses()
        base = sum_program.data_symbols["vals"]
        assert list(addresses[:8]) == [base + 4 * i for i in range(8)]

    def test_branch_indices_consistent(self, sum_program):
        trace = run_program(sum_program)
        for position in trace.branch_indices():
            assert trace.taken[position] in (0, 1)
            instr = sum_program.instructions[trace.pcs[position]]
            assert instr.is_cond_branch

    def test_data_footprint(self, sum_program):
        trace = run_program(sum_program)
        # 9 distinct words touched: 8 loads + 1 result store.
        assert trace.data_footprint(granularity=4) == 9

    def test_memory_mask_cached_once(self, sum_program):
        trace = run_program(sum_program)
        assert trace._memory_mask is None  # computed lazily
        mask = trace._mem_mask()
        assert trace._mem_mask() is mask  # every later call reuses it
        assert np.array_equal(mask, trace.addrs >= 0)

    def test_mask_consumers_agree_after_caching(self, sum_program):
        trace = run_program(sum_program)
        indices = trace.memory_indices()
        assert np.array_equal(trace.addrs[indices],
                              trace.memory_addresses())
        assert trace.summary()["memory_ops"] == len(indices)

    def test_save_load_round_trip(self, tmp_path, sum_program):
        trace = run_program(sum_program)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = DynamicTrace.load(path, sum_program)
        assert np.array_equal(loaded.pcs, trace.pcs)
        assert np.array_equal(loaded.addrs, trace.addrs)
        assert np.array_equal(loaded.taken, trace.taken)


class TestWriteNpz:
    """The single persistence choke point for traces and sweep banks."""

    def _arrays(self):
        return {"a": np.arange(4096, dtype=np.int64),
                "b": np.zeros(4096, dtype=np.int8)}

    def test_round_trip_both_modes(self, tmp_path):
        from repro.sim.trace import write_npz
        arrays = self._arrays()
        for compress in (False, True):
            path = tmp_path / f"blob-{compress}.npz"
            write_npz(path, arrays, compress=compress)
            with np.load(path) as blob:
                for name, expected in arrays.items():
                    assert np.array_equal(blob[name], expected)

    def test_compression_actually_compresses(self, tmp_path):
        from repro.sim.trace import write_npz
        arrays = self._arrays()  # repetitive, like real traces
        plain = tmp_path / "plain.npz"
        packed = tmp_path / "packed.npz"
        write_npz(plain, arrays, compress=False)
        write_npz(packed, arrays, compress=True)
        assert packed.stat().st_size < plain.stat().st_size

    def test_content_digest_cached_and_stable(self, sum_program):
        trace = run_program(sum_program)
        first = trace.content_digest()
        assert trace.content_digest() is first  # memoized, not recomputed
        sliced = DynamicTrace(sum_program, trace.pcs[::1],
                              trace.addrs[::1], trace.taken[::1])
        assert sliced.content_digest() == first
