"""Unit tests for Program, basic-block discovery, and the disassembler."""

import pytest

from repro.isa import assemble, disassemble
from repro.isa.assembler import TEXT_BASE
from repro.isa.instructions import IClass


def test_pc_address():
    program = assemble("    .text\n    nop\n    halt\n")
    assert program.pc_address(0) == TEXT_BASE
    assert program.pc_address(3) == TEXT_BASE + 12


def test_basic_blocks_simple_loop(sum_program):
    blocks = sum_program.basic_blocks()
    # init block, loop body, epilogue
    assert len(blocks) == 3
    starts = [block.start for block in blocks]
    assert starts[0] == 0
    assert sum_program.labels["loop"] in starts


def test_blocks_are_contiguous_partition(loop_nest_program):
    blocks = loop_nest_program.basic_blocks()
    position = 0
    for block in blocks:
        assert block.start == position
        assert block.end > block.start
        position = block.end
    assert position == len(loop_nest_program)


def test_block_of_maps_every_instruction(loop_nest_program):
    blocks = loop_nest_program.basic_blocks()
    for block in blocks:
        for index in range(block.start, block.end):
            assert loop_nest_program.block_of(index) == block.bid


def test_branch_targets_are_block_leaders(loop_nest_program):
    starts = {block.start for block in loop_nest_program.basic_blocks()}
    for instr in loop_nest_program.instructions:
        if instr.target is not None:
            assert instr.target in starts


def test_instruction_after_branch_is_leader():
    program = assemble("""
    .text
    beq r0, r0, end
    add r1, r1, r1
end:
    halt
""")
    starts = {block.start for block in program.basic_blocks()}
    assert 1 in starts


def test_static_mix_counts(sum_program):
    mix = sum_program.static_mix()
    assert mix[IClass.LOAD] == 1
    assert mix[IClass.STORE] == 1
    assert mix[IClass.BRANCH] == 1
    assert sum(mix) == len(sum_program)


def test_blocks_cached_identity(sum_program):
    assert sum_program.basic_blocks() is sum_program.basic_blocks()


class TestDisassembler:
    def test_round_trip_reassembles(self, loop_nest_program):
        text = disassemble(loop_nest_program)
        again = assemble(text, name="roundtrip")
        assert len(again) == len(loop_nest_program)
        for a, b in zip(again.instructions, loop_nest_program.instructions):
            assert a.opcode == b.opcode
            assert a.target == b.target
            assert a.srcs == b.srcs

    def test_labels_rendered(self, sum_program):
        text = disassemble(sum_program)
        assert "loop:" in text
        assert "halt" in text


class TestBlockDiscoveryGuards:
    """Edge cases: empty programs, bad targets, branch-as-last-instr."""

    def test_block_of_empty_program_raises_cleanly(self):
        from repro.isa.program import Program
        program = Program([], name="empty")
        assert program.basic_blocks() == []
        with pytest.raises(IndexError, match="no instructions"):
            program.block_of(0)

    def test_block_of_out_of_range_raises_cleanly(self, sum_program):
        with pytest.raises(IndexError, match="out of range"):
            sum_program.block_of(len(sum_program) + 5)
        with pytest.raises(IndexError, match="out of range"):
            sum_program.block_of(-1)

    def test_out_of_range_target_is_not_a_leader(self):
        from repro.isa.instructions import Instruction
        from repro.isa.program import Program
        program = Program([
            Instruction("addi", rd=5, rs1=0, imm=1),
            Instruction("beq", rs1=5, rs2=0, target=42),
            Instruction("halt"),
        ], name="bad-target")
        blocks = program.basic_blocks()
        # partition stays valid: contiguous and covering
        assert blocks[0].start == 0
        assert blocks[-1].end == len(program)
        assert all(0 <= program.block_of(i) < len(blocks)
                   for i in range(len(program)))

    def test_branch_as_last_instruction(self):
        program = assemble("""
    .text
main:
    addi r5, r0, 1
    beq  r5, r0, main
""", name="tail-branch")
        blocks = program.basic_blocks()
        assert blocks[-1].end == len(program)
        assert program.block_of(len(program) - 1) == blocks[-1].bid
