"""Disclosure audit (DL300-DL303): clones must not leak their source.

Covers the taint closure, the raw-value screen, sound degradation
without provenance, the deliberately-leaked fixture the issue demands,
and the distinct CLI exit code (5) for audit failures.
"""

import pytest

from repro.core import SynthesisParameters, make_clone
from repro.core.synthesizer import CloneResult
from repro.isa import assemble
from repro.lint import audit_disclosure, lint_clone, profile_secrets
from repro.lint.disclosure import (
    COINCIDENCE_FLOOR,
    _encoding_closure,
    extract_literals,
)


def codes_of(report):
    return {diag.code for diag in report.diagnostics}


def _leaked_variant(clone, value):
    """Re-assemble the clone with one raw literal injected."""
    source = clone.asm_source.replace(
        "    halt", f"    li r3, {value}\n    halt", 1)
    assert source != clone.asm_source
    return CloneResult(
        program=assemble(source, name=clone.program.name),
        asm_source=source, profile=clone.profile,
        parameters=clone.parameters, stats=clone.stats)


# ----------------------------------------------------------------------
# Mechanics
# ----------------------------------------------------------------------
class TestTaintMechanics:
    def test_encoding_closure_splits_large_values(self):
        closed = _encoding_closure({0x100400})
        assert 0x100400 in closed
        assert 0x10 in closed  # lui high half
        assert 0x0400 in closed  # ori low half

    def test_encoding_closure_encodes_negatives(self):
        closed = _encoding_closure({-1})
        assert -1 in closed
        assert 0xFFFFFFFF in closed

    def test_floats_carry_no_integer_taint(self):
        assert _encoding_closure({1.0001, 2}) == {2}

    def test_extract_literals_recombines_li_pairs(self):
        program = assemble("""
    .text
main:
    li   r5, 1048576
    li   r6, 7
    halt
""", name="li-pair")
        literals = {value: via
                    for _, value, via in extract_literals(program)}
        assert literals[1048576] == "li"
        assert literals[7] == "addi"

    def test_profile_secrets_filters_small_values(self, loop_nest_profile):
        secrets = profile_secrets(loop_nest_profile)
        assert secrets  # data addresses clear the floor
        assert all(value >= COINCIDENCE_FLOOR for value in secrets)


# ----------------------------------------------------------------------
# The audit on real synthesizer output
# ----------------------------------------------------------------------
class TestAuditOnClones:
    def test_synthesized_clone_is_clean(self, loop_nest_clone):
        report = audit_disclosure(loop_nest_clone)
        assert codes_of(report) == {"DL303"}
        summary = report.diagnostics[-1].data
        assert summary["unaccounted"] == 0
        assert summary["leaks"] == 0
        assert summary["degraded"] is False
        assert summary["literals"] > 0

    def test_provenance_covers_every_literal(self, loop_nest_clone):
        provenance = loop_nest_clone.stats["provenance"]
        assert provenance  # synthesizer annotated its emissions
        # Every origin is a derived statistic, never a raw address list.
        assert set(provenance) <= {
            "slot-offset", "mix-rotation", "branch-pattern",
            "stream-advance", "loop-counter", "rng-step", "stream-phase",
            "reset-period", "run-length", "rng-seed", "fp-seed"}

    def test_leaked_raw_address_fails_dl300_and_dl301(self,
                                                      loop_nest_clone):
        secret = max(profile_secrets(loop_nest_clone.profile))
        broken = _leaked_variant(loop_nest_clone, secret)
        report = audit_disclosure(broken)
        assert "DL301" in codes_of(report)
        assert "DL300" in codes_of(report)
        assert not report.ok

    def test_unaccounted_but_not_secret_is_dl300_only(self,
                                                      loop_nest_clone):
        # A literal with no provenance that matches nothing raw: still
        # an audit failure (unaccounted), but not a disclosure.
        value = 0x7BCD
        assert value not in profile_secrets(loop_nest_clone.profile)
        broken = _leaked_variant(loop_nest_clone, value)
        report = audit_disclosure(broken)
        assert "DL300" in codes_of(report)
        assert "DL301" not in codes_of(report)

    def test_no_provenance_degrades_with_dl302(self, loop_nest_clone):
        stripped = CloneResult(
            program=loop_nest_clone.program,
            asm_source=loop_nest_clone.asm_source,
            profile=loop_nest_clone.profile,
            parameters=loop_nest_clone.parameters,
            stats={})  # older synthesizers recorded no provenance
        report = audit_disclosure(stripped)
        assert "DL302" in codes_of(report)
        assert "DL300" not in codes_of(report)  # screening only
        assert report.ok  # DL302 is warning severity

    def test_degraded_screen_still_catches_raw_leaks(self,
                                                     loop_nest_clone):
        secret = max(profile_secrets(loop_nest_clone.profile))
        broken = _leaked_variant(loop_nest_clone, secret)
        stripped = CloneResult(
            program=broken.program, asm_source=broken.asm_source,
            profile=broken.profile, parameters=broken.parameters,
            stats={})
        report = audit_disclosure(stripped)
        assert "DL302" in codes_of(report)
        assert "DL301" in codes_of(report)
        assert not report.ok

    def test_lint_clone_merges_audit_findings(self, loop_nest_profile,
                                              loop_nest_clone):
        secret = max(profile_secrets(loop_nest_clone.profile))
        broken = _leaked_variant(loop_nest_clone, secret)
        report = lint_clone(broken)
        assert "DL301" in report.codes()
        assert not report.ok
        without = lint_clone(broken, audit=False)
        assert "DL301" not in without.codes()


# ----------------------------------------------------------------------
# CLI: audit failures exit with a distinct code
# ----------------------------------------------------------------------
class TestCliExitCode:
    def test_leaked_clone_exits_5(self, monkeypatch, capsys):
        import repro.cli as cli

        real_make_clone = cli.make_clone

        def leaky_make_clone(profile, parameters):
            clone = real_make_clone(profile, parameters)
            secret = max(profile_secrets(clone.profile))
            return _leaked_variant(clone, secret)

        monkeypatch.setattr(cli, "make_clone", leaky_make_clone)
        code = cli.main(["lint", "crc32", "--clone", "--audit",
                         "--instructions", "30000"])
        assert code == cli.EXIT_AUDIT_FAILED
        out = capsys.readouterr().out
        assert "DL301" in out

    def test_structural_failure_still_exits_4(self, tmp_path, capsys):
        import repro.cli as cli
        bad = tmp_path / "bad.s"
        bad.write_text("""
    .text
main:
    add  r6, r5, r7
    sw   r6, 16(r0)
    halt
""")
        code = cli.main(["lint", str(bad), "--audit"])
        assert code == cli.EXIT_LINT_FAILED

    def test_clean_clone_with_audit_exits_0(self, capsys):
        import repro.cli as cli
        code = cli.main(["lint", "crc32", "--clone", "--audit",
                         "--static-profile", "--instructions", "30000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DL303" in out
