"""Tests for the control-flow-predictability model (paper Sec. 3.1.5/3.2)."""

import pytest

from repro.core.branch_model import (
    BranchPattern,
    RNG_SEED,
    emit_branch,
    pattern_for,
    xorshift32,
)


class TestPatternSelection:
    def test_constant_taken(self):
        pattern = pattern_for(taken_rate=0.98, transition_rate=0.0)
        assert pattern.kind == "taken"
        assert pattern.expected_taken_rate() == 1.0

    def test_constant_not_taken(self):
        pattern = pattern_for(taken_rate=0.01, transition_rate=0.01)
        assert pattern.kind == "not_taken"

    def test_alternating_becomes_modulo_period_2(self):
        pattern = pattern_for(taken_rate=0.5, transition_rate=1.0)
        assert pattern.kind == "modulo"
        assert pattern.period == 2

    def test_structured_runs_become_modulo(self):
        # Long runs: t=0.0625 (period ~32), p=0.5 — far from independence
        # (2p(1-p)=0.5), so the modulo pattern is chosen.
        pattern = pattern_for(taken_rate=0.5, transition_rate=0.0625)
        assert pattern.kind == "modulo"
        assert pattern.period == 32

    def test_independent_looking_becomes_random(self):
        # t ~ 2p(1-p): no structure in the direction sequence.
        pattern = pattern_for(taken_rate=0.5, transition_rate=0.5)
        assert pattern.kind == "random"
        assert pattern.expected_taken_rate() == pytest.approx(0.5)

    def test_biased_independent_random_threshold(self):
        pattern = pattern_for(taken_rate=0.75, transition_rate=0.38)
        assert pattern.kind == "random"
        assert pattern.threshold == 6  # 0.75 * 8

    def test_random_shift_distinct(self):
        a = pattern_for(0.5, 0.5, random_shift=0)
        b = pattern_for(0.5, 0.5, random_shift=1)
        assert a.shift != b.shift


class TestPatternSemantics:
    def test_modulo_direction_sequence(self):
        pattern = BranchPattern(kind="modulo", period=8, threshold=3)
        directions = [pattern.direction(i) for i in range(16)]
        assert directions == [1, 1, 1, 0, 0, 0, 0, 0] * 2

    def test_modulo_rates(self):
        pattern = BranchPattern(kind="modulo", period=16, threshold=4)
        assert pattern.expected_taken_rate() == pytest.approx(0.25)
        assert pattern.expected_transition_rate() == pytest.approx(2 / 16)

    def test_modulo_realized_transition_rate(self):
        pattern = BranchPattern(kind="modulo", period=16, threshold=8)
        directions = [pattern.direction(i) for i in range(1600)]
        transitions = sum(1 for a, b in zip(directions, directions[1:])
                          if a != b)
        assert transitions / (len(directions) - 1) == pytest.approx(
            pattern.expected_transition_rate(), rel=0.05)

    def test_random_taken_rate_approximates_threshold(self):
        pattern = BranchPattern(kind="random", threshold=6, shift=4)
        state = RNG_SEED
        taken = 0
        for _ in range(4000):
            taken += pattern.direction(0, rng_state=state)
            state = xorshift32(state)
        assert taken / 4000 == pytest.approx(6 / 8, abs=0.05)

    def test_random_direction_without_state(self):
        pattern = BranchPattern(kind="random", threshold=4, shift=0)
        state = xorshift32(xorshift32(RNG_SEED))
        assert pattern.direction(2) == pattern.direction(2, rng_state=state)

    def test_xorshift_nonzero_cycle(self):
        state = RNG_SEED
        seen = set()
        for _ in range(1000):
            state = xorshift32(state)
            assert state != 0
            seen.add(state)
        assert len(seen) == 1000


class TestEmission:
    def test_constant_emission(self):
        assert emit_branch(BranchPattern(kind="taken"), "L") \
            == ["    beq r0, r0, L"]
        assert emit_branch(BranchPattern(kind="not_taken"), "L") \
            == ["    bne r0, r0, L"]

    def test_modulo_emission_shape(self):
        lines = emit_branch(BranchPattern(kind="modulo", period=8,
                                          threshold=3), "L7")
        assert len(lines) == 3
        assert "andi" in lines[0] and "7" in lines[0]
        assert "slti" in lines[1] and "3" in lines[1]
        assert lines[2].strip().startswith("bne") and "L7" in lines[2]

    def test_random_emission_shape(self):
        lines = emit_branch(BranchPattern(kind="random", threshold=5,
                                          shift=10), "Lx")
        assert len(lines) == 4
        assert "srli" in lines[0] and "r31" in lines[0]
        assert "andi" in lines[1]
        assert "slti" in lines[2]
        assert "Lx" in lines[3]
