"""Unit tests for the set-associative LRU cache models."""

import pytest

from repro.uarch import Cache, CacheConfig, CacheHierarchy, simulate_cache


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(1024, 2, 32)
        assert config.lines == 32
        assert config.ways == 2
        assert config.sets == 16

    def test_fully_associative(self):
        config = CacheConfig(1024, "full", 32)
        assert config.ways == 32
        assert config.sets == 1

    def test_labels(self):
        assert CacheConfig(256, 1, 32).label() == "256B/1way/32B"
        assert CacheConfig(16 * 1024, "full", 32).label() == "16KB/full/32B"

    @pytest.mark.parametrize("size,assoc,line", [
        (0, 1, 32), (100, 1, 32), (1024, 3, 32), (1024, 1, 0),
    ])
    def test_bad_geometry_rejected(self, size, assoc, line):
        with pytest.raises(ValueError):
            CacheConfig(size, assoc, line)


class TestCacheBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = Cache(CacheConfig(256, 1, 32))
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.access(0x11C) is True  # same 32B line

    def test_direct_mapped_conflict(self):
        cache = Cache(CacheConfig(256, 1, 32))  # 8 sets
        cache.access(0x0)
        assert cache.access(0x100) is False  # same set, different tag
        assert cache.access(0x0) is False  # evicted

    def test_two_way_avoids_that_conflict(self):
        cache = Cache(CacheConfig(256, 2, 32))
        cache.access(0x0)
        cache.access(0x200)
        assert cache.access(0x0) is True

    def test_lru_eviction_order(self):
        cache = Cache(CacheConfig(64, "full", 32))  # 2 lines
        cache.access(0x00)
        cache.access(0x20)
        cache.access(0x00)  # refresh line 0
        cache.access(0x40)  # evicts 0x20 (LRU), not 0x00
        assert cache.contains(0x00)
        assert not cache.contains(0x20)

    def test_resident_lines_bounded(self):
        config = CacheConfig(256, 2, 32)
        cache = Cache(config)
        for address in range(0, 4096, 32):
            cache.access(address)
        assert cache.resident_lines() <= config.lines

    def test_flush(self):
        cache = Cache(CacheConfig(256, 1, 32))
        cache.access(0)
        cache.flush()
        assert cache.stats.accesses == 0
        assert not cache.contains(0)

    def test_flush_reuses_stats_object(self):
        # Callers holding a reference to cache.stats (e.g. hierarchies
        # that expose it) must see the reset, not a stale snapshot.
        cache = Cache(CacheConfig(256, 1, 32))
        held = cache.stats
        cache.access(0)
        cache.access(64)
        cache.flush()
        assert cache.stats is held
        assert (held.accesses, held.misses, held.evictions) == (0, 0, 0)

    def test_stats_accounting(self):
        stats = simulate_cache([0, 0, 32, 64, 0], CacheConfig(256, "full", 32))
        assert stats.accesses == 5
        assert stats.misses == 3
        assert stats.hits == 2
        assert stats.miss_rate == pytest.approx(0.6)
        assert stats.misses_per_instruction(30) == pytest.approx(0.1)

    def test_cyclic_thrash_fully_associative(self):
        # Classic LRU pathology: cyclic walk one line beyond capacity.
        config = CacheConfig(128, "full", 32)  # 4 lines
        addresses = [32 * (i % 5) for i in range(100)]
        stats = simulate_cache(addresses, config)
        assert stats.miss_rate == 1.0

    def test_bigger_cache_never_misses_more_on_streams(self):
        addresses = [4 * i for i in range(2000)] * 2
        small = simulate_cache(addresses, CacheConfig(256, "full", 32))
        large = simulate_cache(addresses, CacheConfig(16384, "full", 32))
        assert large.misses <= small.misses


class TestHierarchy:
    def make(self):
        return CacheHierarchy(
            CacheConfig(256, 1, 32), CacheConfig(256, 1, 32),
            CacheConfig(1024, 2, 64), l1_latency=1, l2_latency=8,
            memory_latency=40)

    def test_l1_hit_latency(self):
        hierarchy = self.make()
        hierarchy.access_data(0x40)
        assert hierarchy.access_data(0x40) == 1

    def test_l2_hit_latency(self):
        hierarchy = self.make()
        hierarchy.access_data(0x40)
        # Evict from tiny L1 with conflicting lines; L2 still holds it.
        for address in (0x140, 0x240, 0x340):
            hierarchy.access_data(address)
        assert hierarchy.access_data(0x40) == 8

    def test_memory_latency_on_cold_miss(self):
        hierarchy = self.make()
        assert hierarchy.access_data(0x40) == 48  # l2 + memory

    def test_instruction_side_separate(self):
        hierarchy = self.make()
        hierarchy.access_instruction(0x40)
        assert hierarchy.l1i.stats.accesses == 1
        assert hierarchy.l1d.stats.accesses == 0

    def test_no_l2(self):
        hierarchy = CacheHierarchy(CacheConfig(256, 1, 32),
                                   CacheConfig(256, 1, 32), None,
                                   memory_latency=40)
        assert hierarchy.access_data(0) == 40
        assert hierarchy.access_data(0) == 1


class TestEvictionStats:
    def test_no_evictions_until_capacity(self):
        cache = Cache(CacheConfig(256, "full", 32))  # 8 lines
        for i in range(8):
            cache.access(i * 32)
        assert cache.stats.evictions == 0
        assert cache.occupancy() == 1.0
        cache.access(8 * 32)
        assert cache.stats.evictions == 1

    def test_snapshot_block(self):
        cache = Cache(CacheConfig(64, 1, 32))  # 2 lines, direct mapped
        cache.access(0)
        cache.access(64)  # conflicts with 0
        snap = cache.stats.snapshot()
        assert snap["accesses"] == 2
        assert snap["misses"] == 2
        assert snap["evictions"] == 1
        assert snap["miss_rate"] == 1.0

    def test_flush_resets_evictions(self):
        cache = Cache(CacheConfig(64, 1, 32))
        cache.access(0)
        cache.access(64)
        cache.flush()
        assert cache.stats.evictions == 0
        assert cache.occupancy() == 0.0
