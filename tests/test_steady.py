"""Steady-state fast-forward: engagement, accounting, and exactness.

The Python engine's fast-forward detects a verified periodic segment of
the visit/event streams and extrapolates the packed scheduling state
algebraically instead of executing every period.  Its one permitted
observable effect is wall time: any trace it engages on must produce
results field-for-field identical to ``PipelineModel.run`` (the corpus
differential suite enforces that globally; here we pin that the
machinery actually *fires* on a periodic kernel, stays off below the
engagement threshold, and accounts for itself in the sweep stats).

These tests force ``REPRO_NATIVE=off``: with the native C loop active
the whole range is timed directly and fast-forward never runs.
"""

import dataclasses

import numpy as np
import pytest

from repro.sim import FunctionalSimulator
from repro.uarch import BASE_CONFIG, native, simulate_pipeline, \
    simulate_pipeline_sweep
from repro.uarch.steady import _longest_run
from repro.uarch.sweep import reset_sweep_stats, sweep_stats_snapshot
from repro.workloads import build_workload


@pytest.fixture(autouse=True)
def python_engine(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "off")
    native.reset()
    yield
    native.reset()


@pytest.fixture(scope="module")
def fft_trace():
    return FunctionalSimulator(build_workload("fft")).run(
        max_instructions=5_000_000, trace=True)


def result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("wall_seconds")
    return fields


class TestLongestRun:
    def test_empty(self):
        assert _longest_run(np.zeros(0, dtype=bool)) == (0, 0)

    def test_all_true(self):
        low, high = _longest_run(np.ones(5, dtype=bool))
        assert (low, high) == (0, 5)

    def test_interior_run(self):
        mask = np.array([1, 0, 1, 1, 1, 0, 1, 1, 0], dtype=bool)
        assert _longest_run(mask) == (2, 5)

    def test_run_at_tail(self):
        mask = np.array([0, 1, 0, 1, 1, 1, 1], dtype=bool)
        assert _longest_run(mask) == (3, 7)


class TestFastForward:
    def test_engages_on_periodic_kernel(self, fft_trace):
        reset_sweep_stats()
        swept = simulate_pipeline_sweep(fft_trace, [BASE_CONFIG],
                                        max_instructions=60_000,
                                        store=None)
        stats = sweep_stats_snapshot()
        assert stats["native_configs"] == 0  # engine forced to Python
        assert stats["steady_segments"] >= 1
        assert stats["steady_ff_configs"] >= 1
        assert stats["steady_ff_instructions"] > 0
        reference = simulate_pipeline(fft_trace, BASE_CONFIG,
                                      max_instructions=60_000)
        assert result_fields(swept[0]) == result_fields(reference)

    def test_stays_off_below_threshold(self, fft_trace):
        # 10k instructions is under _STEADY_MIN_INSTRUCTIONS: detection
        # cost would not amortize, so the engine must not even try.
        reset_sweep_stats()
        swept = simulate_pipeline_sweep(fft_trace, [BASE_CONFIG],
                                        max_instructions=10_000,
                                        store=None)
        stats = sweep_stats_snapshot()
        assert stats["steady_ff_configs"] == 0
        reference = simulate_pipeline(fft_trace, BASE_CONFIG,
                                      max_instructions=10_000)
        assert result_fields(swept[0]) == result_fields(reference)

    def test_extrapolation_is_exact_across_grid(self, fft_trace):
        from tests.test_uarch_sweep import GRID
        reset_sweep_stats()
        swept = simulate_pipeline_sweep(fft_trace, GRID,
                                        max_instructions=60_000,
                                        store=None)
        assert sweep_stats_snapshot()["steady_ff_configs"] >= 1
        for config, result in zip(GRID, swept):
            reference = simulate_pipeline(fft_trace, config,
                                          max_instructions=60_000)
            assert result_fields(result) == result_fields(reference), \
                config.name
