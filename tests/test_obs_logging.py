"""Structured logger: levels, field rendering, JSON-lines mode."""

import io

import pytest

from repro.obs import logging as obslog


@pytest.fixture
def sink():
    """Redirect the global log sink to a buffer, restoring afterwards."""
    buffer = io.StringIO()
    old_level = obslog.current_level()
    old_stream = obslog._CONFIG.stream
    old_json = obslog._CONFIG.json_lines
    obslog.configure(level=obslog.DEBUG, stream=buffer, json_lines=False)
    yield buffer
    obslog.configure(level=old_level, json_lines=old_json)
    obslog._CONFIG.stream = old_stream


class TestLevels:
    def test_parse_level_names_and_numbers(self):
        assert obslog.parse_level("debug") == obslog.DEBUG
        assert obslog.parse_level("WARNING") == obslog.WARNING
        assert obslog.parse_level("35") == 35
        assert obslog.parse_level("bogus") == obslog.INFO
        assert obslog.parse_level(None, default=obslog.ERROR) == obslog.ERROR

    def test_below_level_is_dropped(self, sink):
        obslog.configure(level=obslog.WARNING)
        log = obslog.get_logger("test")
        log.info("should.not.appear")
        log.warning("should.appear")
        out = sink.getvalue()
        assert "should.not.appear" not in out
        assert "should.appear" in out

    def test_is_enabled_for(self, sink):
        obslog.configure(level=obslog.INFO)
        log = obslog.get_logger("test")
        assert log.is_enabled_for(obslog.INFO)
        assert not log.is_enabled_for(obslog.DEBUG)


class TestRendering:
    def test_text_record_has_fields(self, sink):
        obslog.get_logger("repro.sim").info(
            "sim.heartbeat", instructions=5_000_000, mips=2.5)
        line = sink.getvalue().strip()
        assert line.startswith("INFO repro.sim sim.heartbeat")
        assert "instructions=5000000" in line
        assert "mips=2.5" in line

    def test_json_lines_mode(self, sink):
        import json
        obslog.configure(json_lines=True)
        obslog.get_logger("test").error("boom", detail="bad")
        record = json.loads(sink.getvalue())
        assert record["level"] == "ERROR"
        assert record["event"] == "boom"
        assert record["detail"] == "bad"

    def test_get_logger_is_cached(self):
        assert obslog.get_logger("x") is obslog.get_logger("x")
