"""Corpus-wide static-vs-dynamic cross-check.

For every kernel in the corpus (all 23) and a synthesized clone per
kernel, everything the static layer *proves* must contain what the
simulator *observes*, and everything it *predicts* must match what the
profiler measures:

* safety proofs: observed instruction counts, per-block visit counts,
  and memory addresses fall inside the proven bounds — or the proof
  honestly declined ("unbounded"), never a violated claim;
* static profile prediction: bit-for-bit agreement with the dynamic
  profile on every synthesized clone (the tentpole acceptance bar);
* static conformance + disclosure audit: clean at the default scale.
"""

import numpy as np
import pytest

from repro.core import SynthesisParameters, make_clone, profile_trace
from repro.lint import (
    analyze_program,
    check_static_conformance,
    lint_clone,
    predict_profile,
)
from repro.sim import run_program
from repro.workloads import build_workload, workload_names

from tests.test_lint_staticprof import assert_profiles_identical

ALL_KERNELS = workload_names()


@pytest.fixture(scope="module")
def corpus():
    """Per-kernel pipeline products, built on demand and cached."""
    cache = {}

    def get(name):
        entry = cache.get(name)
        if entry is None:
            program = build_workload(name)
            trace = run_program(program)
            profile = profile_trace(trace)
            clone = make_clone(profile, SynthesisParameters())
            clone_trace = run_program(clone.program,
                                      max_instructions=5_000_000)
            entry = cache[name] = {
                "program": program, "trace": trace, "profile": profile,
                "clone": clone, "clone_trace": clone_trace,
            }
        return entry

    return get


def _assert_proofs_contain_observed(program, trace):
    """A proven bound violated by the trace is an analysis bug."""
    result = analyze_program(program)
    if result.terminates:
        assert len(trace) <= result.instruction_bound
        pcs = trace.pcs
        for bid, bound in result.block_bounds.items():
            start = result.cfg.blocks[bid].start
            visits = int(np.count_nonzero(pcs == start))
            assert visits <= bound, \
                f"{program.name} block {bid}: {visits} > {bound}"
    for loop in result.loops:
        if loop.trip_bound is None:
            continue
        start = result.cfg.blocks[loop.header].start
        visits = int(np.count_nonzero(trace.pcs == start))
        outer = 1
        for other in result.loops:
            if other.header != loop.header and loop.header in other.body:
                if other.trip_bound is None:
                    # An unbounded enclosing loop re-enters this one an
                    # unknown number of times: the per-entry bound makes
                    # no whole-run claim, so there is nothing to check.
                    outer = None
                    break
                outer *= other.trip_bound
        if outer is not None:
            assert visits <= loop.trip_bound * outer, \
                f"{program.name} loop bb{loop.header}"
    if result.footprint is not None:
        lo, hi = result.footprint
        addrs = trace.memory_addresses()
        if len(addrs):
            assert int(addrs.min()) >= lo, program.name
            assert int(addrs.max()) < hi, program.name
    else:
        # No proof means the analysis must have said so explicitly.
        assert result.unbounded_memops or result.degraded \
            or not len(trace.memory_addresses())


@pytest.mark.parametrize("name", ALL_KERNELS)
class TestCorpusCrossCheck:
    def test_kernel_proofs_sound(self, name, corpus):
        entry = corpus(name)
        _assert_proofs_contain_observed(entry["program"], entry["trace"])

    def test_clone_proofs_sound(self, name, corpus):
        entry = corpus(name)
        _assert_proofs_contain_observed(entry["clone"].program,
                                        entry["clone_trace"])
        # Clones must additionally prove everything outright.
        result = analyze_program(entry["clone"].program)
        assert result.terminates
        assert result.footprint is not None

    def test_clone_prediction_bit_for_bit(self, name, corpus):
        entry = corpus(name)
        prediction = predict_profile(entry["clone"].program)
        dynamic = profile_trace(entry["clone_trace"])
        assert_profiles_identical(prediction.profile, dynamic)

    def test_clone_static_gate_clean(self, name, corpus):
        entry = corpus(name)
        report, prediction = check_static_conformance(entry["clone"])
        assert prediction is not None, report.render_text()
        assert report.ok, report.render_text()

    def test_clone_full_lint_clean(self, name, corpus):
        entry = corpus(name)
        report = lint_clone(entry["clone"])
        assert report.ok, report.render_text()
        # Info-level proof facts are present; no error/warning findings.
        codes = set(report.codes())
        assert "SR110" in codes
        assert "SR112" in codes
        assert "SR113" in codes
        assert "DL303" in codes
