"""Nested span timing: paths, aggregation, disabled mode."""

import time

import pytest

from repro.obs.timing import Tracer


class TestSpans:
    def test_nested_spans_build_slash_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            assert tracer.current_path() == "outer"
            with tracer.span("inner"):
                assert tracer.current_path() == "outer/inner"
        flat = tracer.flat()
        assert set(flat) == {"outer", "outer/inner"}
        assert flat["outer"]["count"] == 1

    def test_repeated_spans_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        flat = tracer.flat()
        assert flat["phase"]["count"] == 3
        assert flat["phase"]["wall_s"] >= 0.0

    def test_wall_time_measures_sleep(self):
        tracer = Tracer()
        with tracer.span("nap"):
            time.sleep(0.02)
        entry = tracer.flat()["nap"]
        assert entry["wall_s"] >= 0.015
        # Sleeping burns wall time, not CPU time.
        assert entry["cpu_s"] < entry["wall_s"]

    def test_exception_still_records_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError), tracer.span("boom"):
            raise RuntimeError("x")
        assert tracer.flat()["boom"]["count"] == 1
        assert tracer.current_path() is None

    def test_sibling_spans_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert set(tracer.flat()) == {"a", "b"}

    def test_wall_of(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert tracer.wall_of("x") > 0.0
        assert tracer.wall_of("missing") == 0.0


class TestDisabledTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer"), tracer.span("inner"):
            pass
        assert tracer.flat() == {}

    def test_reset_clears_spans(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.flat() == {}
