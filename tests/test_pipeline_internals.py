"""White-box tests of pipeline-model mechanisms: bandwidth ports,
functional-unit contention, unpipelined divides, window pressure, and
I-cache-driven fetch stalls."""


from repro.isa import assemble
from repro.sim import run_program
from repro.uarch import BASE_CONFIG, simulate_pipeline
from repro.uarch.cache import CacheConfig
from repro.uarch.pipeline import _BandwidthPort


class TestBandwidthPort:
    def test_width_one_serializes(self):
        port = _BandwidthPort(1)
        assert port.allocate(5) == 5
        assert port.allocate(5) == 6
        assert port.allocate(5) == 7

    def test_width_two_pairs(self):
        port = _BandwidthPort(2)
        assert port.allocate(3) == 3
        assert port.allocate(3) == 3
        assert port.allocate(3) == 4

    def test_later_request_resets_count(self):
        port = _BandwidthPort(2)
        port.allocate(1)
        assert port.allocate(10) == 10
        assert port.allocate(10) == 10
        assert port.allocate(10) == 11

    def test_monotonic_output(self):
        port = _BandwidthPort(3)
        last = -1
        for earliest in (0, 0, 0, 0, 2, 2, 2, 9, 9):
            result = port.allocate(earliest)
            assert result >= last
            last = result


def looped(body_lines, iterations=200):
    lines = ["    .text", "    li r1, 0", f"    li r2, {iterations}", "top:"]
    lines += [f"    {line}" for line in body_lines]
    lines += ["    addi r1, r1, 1", "    blt r1, r2, top", "    halt"]
    return run_program(assemble("\n".join(lines)))


class TestFunctionalUnits:
    def test_div_latency_bites(self):
        fast = looped(["add r3, r4, r5"] * 8)
        slow = looped(["div r3, r4, r5"] * 8)
        ipc_fast = simulate_pipeline(fast, BASE_CONFIG).ipc
        ipc_slow = simulate_pipeline(slow, BASE_CONFIG).ipc
        assert ipc_slow < ipc_fast * 0.5

    def test_unpipelined_divide_serializes_unit(self):
        # Independent divides still contend for the single divider.
        trace = looped(["div r3, r4, r5", "div r6, r7, r8"] * 4)
        result = simulate_pipeline(trace, BASE_CONFIG)
        # 8 divides x 12 cycles each on one unpipelined unit per loop of
        # ~11 instructions: IPC must sit near 11/96.
        assert result.ipc < 0.25

    def test_two_int_alus_visible_at_width_two(self):
        trace = looped(["add r3, r1, r1", "add r4, r1, r1",
                        "add r5, r1, r1", "add r6, r1, r1"] * 3)
        wide = BASE_CONFIG.renamed("w2", width=2)
        assert simulate_pipeline(trace, wide).ipc \
            > simulate_pipeline(trace, BASE_CONFIG).ipc

    def test_fp_and_int_units_overlap(self):
        mixed = looped(["fadd f4, f5, f6", "add r3, r1, r1"] * 4)
        fp_only = looped(["fadd f4, f5, f6", "fadd f7, f8, f9"] * 4)
        wide = BASE_CONFIG.renamed("w2", width=2)
        assert simulate_pipeline(mixed, wide).ipc \
            >= simulate_pipeline(fp_only, wide).ipc


class TestWindowPressure:
    def test_tiny_rob_throttles_miss_overlap(self):
        source = """
    .data
buf: .space 262144
    .text
    li r1, 0
    li r2, 300
    la r4, buf
top:
    lw r5, 0(r4)
    lw r6, 64(r4)
    lw r7, 128(r4)
    lw r8, 192(r4)
    addi r4, r4, 256
    addi r1, r1, 1
    blt r1, r2, top
    halt
"""
        trace = run_program(assemble(source))
        tiny = BASE_CONFIG.renamed("rob2", rob_size=2, lsq_size=2)
        big = BASE_CONFIG.renamed("rob64", rob_size=64, lsq_size=32)
        ipc_tiny = simulate_pipeline(trace, tiny).ipc
        ipc_big = simulate_pipeline(trace, big).ipc
        assert ipc_big > ipc_tiny

    def test_lsq_limits_memory_parallelism(self):
        source = """
    .data
buf: .space 262144
    .text
    li r1, 0
    li r2, 300
    la r4, buf
top:
    lw r5, 0(r4)
    lw r6, 4096(r4)
    lw r7, 8192(r4)
    addi r4, r4, 128
    addi r1, r1, 1
    blt r1, r2, top
    halt
"""
        trace = run_program(assemble(source))
        one = BASE_CONFIG.renamed("lsq1", lsq_size=1)
        eight = BASE_CONFIG
        assert simulate_pipeline(trace, eight).ipc \
            >= simulate_pipeline(trace, one).ipc


class TestFetchSide:
    def test_icache_misses_counted(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert result.icache_accesses > 0
        assert 0 <= result.icache_misses <= result.icache_accesses

    def test_tiny_icache_hurts_big_loop(self):
        # A loop body larger than a 256B I-cache thrashes fetch.
        body = [f"add r{3 + (i % 6)}, r1, r1" for i in range(120)]
        trace = looped(body, iterations=100)
        small_icache = BASE_CONFIG.renamed(
            "i256", l1i=CacheConfig(256, 2, 32))
        ipc_small = simulate_pipeline(trace, small_icache).ipc
        ipc_base = simulate_pipeline(trace, BASE_CONFIG).ipc
        assert ipc_small < ipc_base

    def test_l2_shared_between_instruction_and_data(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert result.l2_accesses == result.icache_misses \
            + result.dcache_misses
