"""Sweep-engine differential suite: one-pass grids vs the reference.

``simulate_pipeline_sweep`` promises *field-for-field identity* with
``PipelineModel.run`` for every config in a grid.  This suite enforces
the whole contract:

* identical ``PipelineResult`` fields on all 23 corpus kernels and a
  synthesized clone, across the base config, every paper design change,
  and a superscalar width sweep;
* identical results with and without telemetry, under a cap that lands
  mid basic-block, and with no cap at all;
* the interpreted fallback for traces that violate block structure;
* digest/bank/kernel persistence round-trips through the artifact
  store, including corrupt-entry tolerance;
* serial vs ``--jobs`` grid studies produce identical JSON;
* the vectorized predictor outcome banks match the scalar predictor
  specification kind by kind.

It doubles as the tier-1 CI gate for sweep-engine regressions.
"""

import dataclasses
import json
import os

import pytest

from repro.evaluation import design_change_study
from repro.exec.store import ArtifactStore
from repro.obs.metrics import REGISTRY
from repro.obs.runinfo import RunManifest, validate_manifest
from repro.sim import FunctionalSimulator
from repro.sim.trace import DynamicTrace
from repro.uarch import (
    BASE_CONFIG,
    DESIGN_CHANGES,
    simulate_pipeline,
    simulate_pipeline_sweep,
    trace_digest,
)
from repro.uarch.branch_predictors import (
    simulate_predictor,
    simulate_predictor_reference,
)
from repro.uarch import native
from repro.uarch.sweep import reset_sweep_stats, sweep_stats_snapshot
from repro.workloads import build_workload, workload_names

KERNELS = workload_names()

#: The grids the paper's evaluation actually runs: base + Table 3's
#: design changes + the Figure 8 width sweep.
GRID = ([BASE_CONFIG] + list(DESIGN_CHANGES)
        + [BASE_CONFIG.renamed(f"width-{width}", width=width)
           for width in (2, 4, 8)])

#: Enough instructions to exercise every structure (ROB/LSQ wrap,
#: fetch-queue stalls, L2 traffic) while keeping the corpus run fast.
CAP = 20_000


@pytest.fixture(params=["native", "python"])
def engine(request, monkeypatch):
    """Run a test under both timing engines (native C and Python).

    The native loop quietly stands down when no C compiler is present,
    so the "native" parameter only asserts availability where the
    environment actually provides one.
    """
    if request.param == "python":
        monkeypatch.setenv("REPRO_NATIVE", "off")
    native.reset()
    yield request.param
    native.reset()


@pytest.fixture()
def python_engine(monkeypatch):
    """Force the compiled-Python kernels + interpreter (no C loop)."""
    monkeypatch.setenv("REPRO_NATIVE", "off")
    native.reset()
    yield
    native.reset()


def result_fields(result):
    """Every comparable field of a PipelineResult (host timing aside)."""
    data = dataclasses.asdict(result)
    data.pop("wall_seconds")
    data["class_counts"] = [int(count) for count in data["class_counts"]]
    return data


def assert_sweep_equivalent(trace, configs, max_instructions=CAP,
                            store=None):
    """Sweep the grid and compare each config against the reference."""
    swept = simulate_pipeline_sweep(trace, configs,
                                    max_instructions=max_instructions,
                                    store=store)
    assert len(swept) == len(configs)
    for config, result in zip(configs, swept):
        reference = simulate_pipeline(trace, config,
                                      max_instructions=max_instructions)
        assert result_fields(result) == result_fields(reference), \
            f"sweep diverges from run for config {config.name!r}"


_TRACES = {}


def kernel_trace(name):
    if name not in _TRACES:
        program = build_workload(name)
        _TRACES[name] = FunctionalSimulator(program).run(
            max_instructions=5_000_000, trace=True)
    return _TRACES[name]


# ----------------------------------------------------------------------
# Corpus-wide differential equivalence
# ----------------------------------------------------------------------
class TestCorpusEquivalence:
    @pytest.mark.parametrize("name", KERNELS)
    def test_kernel_bit_identical(self, name, engine):
        assert_sweep_equivalent(kernel_trace(name), GRID)

    def test_clone_bit_identical(self, loop_nest_clone_trace, engine):
        assert_sweep_equivalent(loop_nest_clone_trace, GRID)

    def test_uncapped_trace(self, loop_nest_trace, engine):
        assert_sweep_equivalent(loop_nest_trace, GRID,
                                max_instructions=None)

    def test_cap_lands_mid_block(self, loop_nest_trace, engine):
        # 12345 is deliberately not a multiple of any block length, so
        # the kernel must hand the final partial visit back to the
        # interpreted path.
        assert_sweep_equivalent(loop_nest_trace, GRID,
                                max_instructions=12_345)

    def test_empty_grid(self, loop_nest_trace):
        assert simulate_pipeline_sweep(loop_nest_trace, []) == []

    def test_results_follow_config_order(self, loop_nest_trace):
        results = simulate_pipeline_sweep(loop_nest_trace, GRID,
                                          max_instructions=CAP)
        assert [result.config.name for result in results] \
            == [config.name for config in GRID]


# ----------------------------------------------------------------------
# Telemetry parity
# ----------------------------------------------------------------------
class TestTelemetryParity:
    def test_equivalent_with_metrics_enabled(self, loop_nest_trace):
        # Stall/redirect counters are collected only while the registry
        # is enabled; the sweep must mirror run() in both modes.
        was_enabled = REGISTRY.enabled
        REGISTRY.enable()
        try:
            assert_sweep_equivalent(loop_nest_trace, GRID[:4])
        finally:
            if not was_enabled:
                REGISTRY.disable()

    def test_stall_counters_populated(self, loop_nest_trace):
        was_enabled = REGISTRY.enabled
        REGISTRY.enable()
        try:
            [result] = simulate_pipeline_sweep(
                loop_nest_trace, [BASE_CONFIG], max_instructions=CAP)
        finally:
            if not was_enabled:
                REGISTRY.disable()
        assert result.rob_stalls + result.lsq_stalls \
            + result.fetch_queue_stalls + result.redirect_cycles > 0


# ----------------------------------------------------------------------
# Interpreted fallback
# ----------------------------------------------------------------------
class TestFallback:
    @pytest.fixture()
    def shifted_trace(self, loop_nest_trace):
        # Dropping the first instruction makes the trace start mid-block,
        # which violates the digest's block-walk invariant.
        return DynamicTrace(loop_nest_trace.program,
                            loop_nest_trace.pcs[1:].copy(),
                            loop_nest_trace.addrs[1:].copy(),
                            loop_nest_trace.taken[1:].copy())

    def test_structure_violation_detected(self, shifted_trace):
        assert not trace_digest(shifted_trace).blocks_ok

    def test_fallback_is_still_exact(self, shifted_trace, python_engine):
        reset_sweep_stats()
        assert_sweep_equivalent(shifted_trace, GRID[:4])
        stats = sweep_stats_snapshot()
        assert stats["fallback_configs"] == 4
        assert stats["kernels_compiled"] == 0

    def test_corpus_runs_never_fall_back(self, loop_nest_trace):
        reset_sweep_stats()
        simulate_pipeline_sweep(loop_nest_trace, GRID,
                                max_instructions=CAP)
        assert sweep_stats_snapshot()["fallback_configs"] == 0


# ----------------------------------------------------------------------
# Digest/bank/kernel persistence
# ----------------------------------------------------------------------
class TestPersistence:
    def _forget(self, trace):
        """Drop in-memory memoization so the store is the only cache."""
        for holder, attr in ((trace, "_sweep_digest"),
                             (trace.program, "_sweep_static"),
                             (trace.program, "_sweep_kernels")):
            if hasattr(holder, attr):
                delattr(holder, attr)

    def test_round_trip(self, loop_nest_trace, tmp_path, python_engine):
        store = ArtifactStore(root=str(tmp_path), enabled=True)
        self._forget(loop_nest_trace)
        reset_sweep_stats()
        cold = simulate_pipeline_sweep(loop_nest_trace, GRID[:4],
                                       max_instructions=CAP, store=store)
        stats = sweep_stats_snapshot()
        assert stats["digests_saved"] == 1
        assert stats["cache_banks_saved"] >= 1
        assert stats["pred_banks_saved"] >= 1
        assert stats["kernels_saved"] >= 1

        self._forget(loop_nest_trace)
        reset_sweep_stats()
        warm = simulate_pipeline_sweep(loop_nest_trace, GRID[:4],
                                       max_instructions=CAP, store=store)
        stats = sweep_stats_snapshot()
        assert stats["digests_loaded"] == 1
        assert stats["digests_built"] == 0
        assert stats["cache_banks_loaded"] >= 1
        assert stats["pred_banks_loaded"] >= 1
        assert stats["kernels_loaded"] >= 1
        assert stats["kernels_compiled"] == 0
        assert [result_fields(result) for result in cold] \
            == [result_fields(result) for result in warm]

    def test_bank_store_keys_predict_persisted_entries(
            self, loop_nest_trace, tmp_path, python_engine):
        """The fleet's pin helper names exactly the digest/bank keys a
        persisted sweep creates, without building any of them."""
        from repro.uarch.sweep import bank_store_keys
        store = ArtifactStore(root=str(tmp_path), enabled=True)
        self._forget(loop_nest_trace)
        predicted = bank_store_keys(loop_nest_trace, GRID[:4])
        assert any(key.startswith("sweep-digest-") for key in predicted)
        assert any(key.startswith("sweep-cbank-") for key in predicted)
        assert any(key.startswith("sweep-pbank-") for key in predicted)
        simulate_pipeline_sweep(loop_nest_trace, GRID[:4],
                                max_instructions=CAP, store=store)
        persisted = {key for key, _, _ in store.entries()}
        assert set(predicted) <= persisted

    def test_corrupt_entries_are_rebuilt(self, loop_nest_trace, tmp_path,
                                         python_engine):
        store = ArtifactStore(root=str(tmp_path), enabled=True)
        self._forget(loop_nest_trace)
        cold = simulate_pipeline_sweep(loop_nest_trace, GRID[:4],
                                       max_instructions=CAP, store=store)
        # Truncate every persisted payload to garbage.
        clobbered = 0
        for key, _, _ in store.entries():
            entry = store.entry_dir(key)
            for filename in os.listdir(entry):
                if filename.endswith((".npz", ".marshal")):
                    with open(os.path.join(entry, filename), "wb") as fh:
                        fh.write(b"not a payload")
                    clobbered += 1
        assert clobbered > 0

        self._forget(loop_nest_trace)
        reset_sweep_stats()
        recovered = simulate_pipeline_sweep(
            loop_nest_trace, GRID[:4], max_instructions=CAP, store=store)
        stats = sweep_stats_snapshot()
        assert stats["digests_built"] == 1
        assert stats["kernels_compiled"] >= 1
        assert [result_fields(result) for result in cold] \
            == [result_fields(result) for result in recovered]

    def test_disabled_store_is_skipped(self, loop_nest_trace, tmp_path):
        store = ArtifactStore(root=str(tmp_path), enabled=False)
        self._forget(loop_nest_trace)
        reset_sweep_stats()
        assert_sweep_equivalent(loop_nest_trace, GRID[:2], store=store)
        stats = sweep_stats_snapshot()
        assert stats["digests_saved"] == 0
        assert stats["kernels_saved"] == 0
        assert store.entries() == []


# ----------------------------------------------------------------------
# Sweep reuse accounting
# ----------------------------------------------------------------------
class TestSweepStats:
    def test_shared_banks_counted(self, loop_nest_trace):
        reset_sweep_stats()
        simulate_pipeline_sweep(loop_nest_trace, GRID,
                                max_instructions=CAP)
        stats = sweep_stats_snapshot()
        assert stats["grids"] == 1
        assert stats["configs"] == len(GRID)
        # Width variants share the base cache hierarchy and predictor,
        # so the banks must be deduplicated across the grid.
        assert stats["distinct_hierarchies"] < len(GRID)
        assert stats["distinct_predictors"] < len(GRID)
        reused = (stats["digests_reused"] + stats["cache_banks_reused"]
                  + stats["pred_banks_reused"] + stats["kernels_reused"])
        assert reused > 0

    def test_manifest_carries_sweep_block(self, loop_nest_trace):
        reset_sweep_stats()
        simulate_pipeline_sweep(loop_nest_trace, GRID[:2],
                                max_instructions=CAP)
        manifest = RunManifest.collect("test", target="loop-nest")
        assert manifest.sweep is not None
        assert manifest.sweep["grids"] == 1
        assert validate_manifest(manifest.to_dict()) == []

    def test_manifest_omits_sweep_when_none_ran(self):
        reset_sweep_stats()
        manifest = RunManifest.collect("test")
        assert manifest.sweep is None
        assert validate_manifest(manifest.to_dict()) == []


# ----------------------------------------------------------------------
# Native timing loop
# ----------------------------------------------------------------------
class TestNative:
    needs_native = pytest.mark.skipif(not native.available(),
                                      reason="no C compiler on host")

    def test_env_gate_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "off")
        native.reset()
        try:
            assert not native.available()
        finally:
            native.reset()

    @needs_native
    def test_native_configs_counted(self, loop_nest_trace):
        reset_sweep_stats()
        simulate_pipeline_sweep(loop_nest_trace, GRID,
                                max_instructions=CAP)
        stats = sweep_stats_snapshot()
        assert stats["native_configs"] == len(GRID)
        assert stats["kernels_compiled"] == 0
        assert stats["fallback_configs"] == 0

    @needs_native
    def test_state_handoff_matches_interpreter(self, loop_nest_trace):
        # The C loop and the interpreter share the packed-state layout,
        # so timing [0, k) natively and [k, total) interpreted must land
        # in exactly the state the interpreter reaches alone.
        from repro.uarch.sweep import (_build_cache_bank,
                                       _build_pred_bank,
                                       _initial_state,
                                       _interpreted_range, trace_digest)
        digest = trace_digest(loop_nest_trace)
        config = BASE_CONFIG
        cache_bank = _build_cache_bank(digest, config)
        pred_bank = _build_pred_bank(digest, config)
        total = min(CAP, digest.n)
        split = total // 3 + 1

        mixed = _initial_state(config)
        native.run_range(0, split, digest, config, cache_bank,
                         pred_bank, mixed)
        _interpreted_range(split, total, digest, config, cache_bank,
                           pred_bank, mixed)

        pure = _initial_state(config)
        _interpreted_range(0, total, digest, config, cache_bank,
                           pred_bank, pure)
        assert mixed[0] == pure[0]
        assert mixed[1:5] == pure[1:5]
        assert tuple(mixed[5]) == tuple(pure[5])

    @needs_native
    def test_library_cache_survives_reset(self):
        native.reset()
        assert native.available()


# ----------------------------------------------------------------------
# Grid studies: serial vs --jobs
# ----------------------------------------------------------------------
class TestStudyParallelism:
    def test_design_change_study_jobs_invariant(self):
        serial = design_change_study(["crc32"], max_instructions=CAP,
                                     jobs=1)
        parallel = design_change_study(["crc32"], max_instructions=CAP,
                                       jobs=2)
        assert json.dumps(serial, sort_keys=True, default=str) \
            == json.dumps(parallel, sort_keys=True, default=str)


# ----------------------------------------------------------------------
# Vectorized predictors vs the scalar specification
# ----------------------------------------------------------------------
class TestPredictorEquivalence:
    KINDS = ["nottaken", "taken", "bimodal", "gap", "gshare"]

    @pytest.mark.parametrize("kind", KINDS)
    def test_loop_nest(self, kind, loop_nest_trace):
        fast = simulate_predictor(loop_nest_trace, kind)
        slow = simulate_predictor_reference(loop_nest_trace, kind)
        assert fast.stats.lookups == slow.stats.lookups
        assert fast.stats.mispredictions == slow.stats.mispredictions

    @pytest.mark.parametrize("kind", KINDS)
    def test_corpus_kernel(self, kind):
        trace = kernel_trace("qsort")
        fast = simulate_predictor(trace, kind)
        slow = simulate_predictor_reference(trace, kind)
        assert fast.stats.lookups == slow.stats.lookups
        assert fast.stats.mispredictions == slow.stats.mispredictions

    @pytest.mark.parametrize("kind,kwargs", [
        ("bimodal", {"entries": 64}),
        ("gshare", {"history_bits": 6}),
        ("gap", {"history_bits": 3, "pc_bits": 4}),
    ])
    def test_sized_variants(self, kind, kwargs, loop_nest_trace):
        fast = simulate_predictor(loop_nest_trace, kind, **kwargs)
        slow = simulate_predictor_reference(loop_nest_trace, kind,
                                            **kwargs)
        assert fast.stats.mispredictions == slow.stats.mispredictions
