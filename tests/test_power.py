"""Tests for the Wattch-style power model."""

import pytest

from repro.uarch import BASE_CONFIG, PowerModel, estimate_power, simulate_pipeline
from repro.uarch.power import PowerBreakdown, _array_energy


class TestScalingLaws:
    def test_array_energy_grows_with_size(self):
        assert _array_energy(16 * 1024) > _array_energy(1024)

    def test_array_energy_grows_with_associativity(self):
        assert _array_energy(1024, 8) > _array_energy(1024, 1)

    def test_wider_machine_has_higher_peak(self):
        narrow = PowerModel(BASE_CONFIG)
        wide = PowerModel(BASE_CONFIG.renamed("w2", width=2))
        assert wide.clock_power > narrow.clock_power
        assert wide.peak["dispatch_window"] > narrow.peak["dispatch_window"]

    def test_bigger_rob_costs_more(self):
        small = PowerModel(BASE_CONFIG)
        big = PowerModel(BASE_CONFIG.renamed("rob", rob_size=64))
        assert big.e_dispatch > small.e_dispatch

    def test_smaller_dcache_cheaper_per_access(self):
        from repro.uarch.cache import CacheConfig
        small = PowerModel(BASE_CONFIG.renamed(
            "d8", l1d=CacheConfig(8 * 1024, 2, 32)))
        assert small.e_dcache < PowerModel(BASE_CONFIG).e_dcache


class TestEvaluation:
    def test_total_is_sum_of_parts(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        breakdown = PowerModel(BASE_CONFIG).evaluate(result)
        parts = (breakdown.fetch + breakdown.dispatch_window
                 + breakdown.regfile + breakdown.functional_units
                 + breakdown.dcache + breakdown.icache + breakdown.l2
                 + breakdown.branch_predictor + breakdown.lsq
                 + breakdown.clock)
        assert breakdown.total == pytest.approx(parts)

    def test_positive_power(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert estimate_power(result) > 0

    def test_empty_breakdown_totals_zero(self):
        assert PowerBreakdown().total == 0.0

    def test_wider_machine_burns_more_power(self, loop_nest_trace):
        wide_config = BASE_CONFIG.renamed("w2", width=2)
        base = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        wide = simulate_pipeline(loop_nest_trace, wide_config)
        assert estimate_power(wide, wide_config) \
            > estimate_power(base, BASE_CONFIG)

    def test_in_order_burns_less_than_base(self, loop_nest_trace):
        in_order = BASE_CONFIG.renamed("io", in_order=True)
        base = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        slower = simulate_pipeline(loop_nest_trace, in_order)
        # Same work over more cycles => lower average power.
        assert estimate_power(slower, in_order) \
            <= estimate_power(base, BASE_CONFIG) * 1.001

    def test_estimate_uses_result_config_by_default(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert estimate_power(result) == pytest.approx(
            estimate_power(result, BASE_CONFIG))
