"""Property-based tests (hypothesis) on core data structures and
invariants: LRU caches against a reference model, stride profiling on
synthesized access patterns, predictor table bounds, metric identities,
and branch-pattern rate realization."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.branch_model import BranchPattern, pattern_for
from repro.core.profile import WorkloadProfile, dep_bucket
from repro.core.profiler import _mean_run_length
from repro.evaluation.metrics import pearson, rank_vector
from repro.uarch.branch_predictors import TwoLevelGAp, make_predictor
from repro.uarch.cache import Cache, CacheConfig


# ----------------------------------------------------------------------
# Cache vs a trivially-correct reference model
# ----------------------------------------------------------------------
class ReferenceLru:
    """Obviously-correct LRU cache: list of blocks per set, O(n)."""

    def __init__(self, config):
        self.config = config
        self.sets = [[] for _ in range(config.sets)]

    def access(self, address):
        block = address // self.config.line
        bucket = self.sets[block % self.config.sets]
        if block in bucket:
            bucket.remove(block)
            bucket.append(block)
            return True
        if len(bucket) >= self.config.ways:
            bucket.pop(0)
        bucket.append(block)
        return False


cache_geometries = st.sampled_from([
    CacheConfig(256, 1, 32), CacheConfig(256, 2, 32),
    CacheConfig(512, 4, 32), CacheConfig(512, "full", 32),
    CacheConfig(1024, 2, 64), CacheConfig(2048, "full", 32),
])


@settings(max_examples=60, deadline=None)
@given(config=cache_geometries,
       addresses=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=300))
def test_cache_matches_reference_model(config, addresses):
    cache = Cache(config)
    reference = ReferenceLru(config)
    for address in addresses:
        assert cache.access(address) == reference.access(address)


@settings(max_examples=30, deadline=None)
@given(config=cache_geometries,
       addresses=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=300))
def test_cache_occupancy_never_exceeds_capacity(config, addresses):
    cache = Cache(config)
    for address in addresses:
        cache.access(address)
        assert cache.resident_lines() <= config.lines


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(0, 1 << 12), min_size=2, max_size=200))
def test_inclusion_property_across_associativity(addresses):
    """LRU caches with same sets count: higher associativity never turns
    a hit into a miss (stack property per set)."""
    small = Cache(CacheConfig(512, 2, 32))   # 8 sets, 2 ways
    large = Cache(CacheConfig(1024, 4, 32))  # 8 sets, 4 ways
    for address in addresses:
        hit_small = small.access(address)
        hit_large = large.access(address)
        if hit_small:
            assert hit_large


# ----------------------------------------------------------------------
# Stride profiling on synthesized patterns
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(stride=st.integers(-64, 64).filter(lambda s: s != 0),
       count=st.integers(8, 200),
       base=st.integers(0x1000, 0x8000))
def test_profiler_recovers_pure_stride(stride, count, base):
    from repro.core.profiler import WorkloadProfiler
    from repro.isa import assemble
    from repro.sim.trace import DynamicTrace

    program = assemble(
        "    .text\nx:\n    lw r1, 0(r4)\n    j x\n    halt\n")
    pcs = np.zeros(count, dtype=np.int32)
    addrs = np.array([base * 64 + stride * i + 65536 for i in range(count)],
                     dtype=np.int64)
    taken = np.full(count, -1, dtype=np.int8)
    trace = DynamicTrace(program, pcs, addrs, taken)
    profile = WorkloadProfiler().profile(trace)
    stats = profile.mem_ops[0]
    assert stats.dominant_stride == stride
    assert stats.coverage == 1.0
    assert profile.stride_coverage == 1.0


@settings(max_examples=50, deadline=None)
@given(mask=st.lists(st.booleans(), min_size=0, max_size=64))
def test_mean_run_length_bounds(mask):
    value = _mean_run_length(np.array(mask, dtype=bool))
    assert value >= 1.0
    assert value <= max(1.0, len(mask))


@settings(max_examples=50, deadline=None)
@given(distance=st.integers(1, 10_000))
def test_dep_bucket_total_and_monotone(distance):
    bucket = dep_bucket(distance)
    assert 0 <= bucket <= 7
    assert dep_bucket(distance + 1) >= bucket


# ----------------------------------------------------------------------
# Metrics identities
# ----------------------------------------------------------------------
finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


@settings(max_examples=60, deadline=None)
@given(xs=st.lists(finite_floats, min_size=2, max_size=30))
def test_pearson_self_correlation(xs):
    result = pearson(xs, xs)
    if len(set(xs)) > 1:
        assert result == 1.0 or math.isclose(result, 1.0, abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(xs=st.lists(finite_floats, min_size=2, max_size=30),
       ys=st.lists(finite_floats, min_size=2, max_size=30))
def test_pearson_symmetric_and_bounded(xs, ys):
    n = min(len(xs), len(ys))
    xs, ys = xs[:n], ys[:n]
    forward = pearson(xs, ys)
    assert -1.0 - 1e-9 <= forward <= 1.0 + 1e-9
    assert math.isclose(forward, pearson(ys, xs), abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(finite_floats, min_size=1, max_size=30))
def test_rank_vector_is_permutation_of_ranks(values):
    ranks = rank_vector(values)
    assert len(ranks) == len(values)
    # Ranks sum to n(n+1)/2 even with ties (tie-averaging preserves it).
    n = len(values)
    assert math.isclose(sum(ranks), n * (n + 1) / 2, abs_tol=1e-6)


# ----------------------------------------------------------------------
# Branch model: realized rates match requested rates
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(taken=st.floats(0.0, 1.0), transition=st.floats(0.0, 1.0))
def test_pattern_for_always_realizable(taken, transition):
    pattern = pattern_for(taken, transition)
    assert pattern.kind in ("taken", "not_taken", "modulo", "random")
    if pattern.kind == "modulo":
        assert pattern.period & (pattern.period - 1) == 0
        assert 1 <= pattern.threshold <= pattern.period - 1


@settings(max_examples=30, deadline=None)
@given(period_log=st.integers(1, 8),
       threshold_fraction=st.floats(0.1, 0.9))
def test_modulo_pattern_rates_realized(period_log, threshold_fraction):
    period = 1 << period_log
    threshold = max(1, min(period - 1, round(period * threshold_fraction)))
    pattern = BranchPattern(kind="modulo", period=period,
                            threshold=threshold)
    directions = [pattern.direction(i) for i in range(period * 50)]
    taken_rate = sum(directions) / len(directions)
    assert math.isclose(taken_rate, threshold / period, abs_tol=0.02)
    transitions = sum(1 for a, b in zip(directions, directions[1:])
                      if a != b)
    assert math.isclose(transitions / (len(directions) - 1),
                        pattern.expected_transition_rate(), abs_tol=0.02)


# ----------------------------------------------------------------------
# Predictor state stays in bounds under arbitrary update streams
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(updates=st.lists(
    st.tuples(st.integers(0, 1 << 16), st.booleans()),
    min_size=1, max_size=300),
    kind=st.sampled_from(["bimodal", "gap", "gshare"]))
def test_predictor_counters_bounded(updates, kind):
    predictor = make_predictor(kind)
    for pc, taken in updates:
        predictor.predict(pc)
        predictor.update(pc, taken)
    assert all(0 <= counter <= 3 for counter in predictor.counters)
    if isinstance(predictor, TwoLevelGAp):
        assert 0 <= predictor.history < (1 << predictor.history_bits)
    assert predictor.stats.mispredictions <= predictor.stats.lookups


# ----------------------------------------------------------------------
# Profile serialization is total over generated profiles
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 31))
def test_profile_json_round_trip_random_programs(seed):
    import random

    from repro.core import profile_program
    from repro.isa import assemble

    rng = random.Random(seed)
    n = rng.randint(3, 12)
    lines = ["    .data", "buf: .space 256", "    .text",
             "    la r4, buf", "    li r1, 0",
             f"    li r2, {rng.randint(4, 40)}", "top:"]
    for _ in range(n):
        choice = rng.randint(0, 3)
        if choice == 0:
            lines.append(f"    addi r{rng.randint(5, 9)}, r1, "
                         f"{rng.randint(-4, 4)}")
        elif choice == 1:
            lines.append(f"    lw r{rng.randint(5, 9)}, "
                         f"{4 * rng.randint(0, 30)}(r4)")
        elif choice == 2:
            lines.append(f"    sw r1, {4 * rng.randint(0, 30)}(r4)")
        else:
            lines.append(f"    mul r{rng.randint(5, 9)}, r1, r1")
    lines += ["    addi r1, r1, 1", "    blt r1, r2, top", "    halt"]
    profile = profile_program(assemble("\n".join(lines)))
    restored = WorkloadProfile.from_json(profile.to_json())
    assert restored.to_dict() == profile.to_dict()
