"""Structural lint passes (SR1xx) and the diagnostics engine."""

import json

import pytest

from repro.isa import assemble
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.lint import (
    ControlFlowGraph,
    LintReport,
    check_branch_targets,
    check_fallthrough_end,
    check_memory_bounds,
    check_reachability,
    check_register_writes,
    check_use_before_def,
    lint_program,
    make_diagnostic,
    merge_reports,
)
from repro.lint.diagnostics import CODES


def codes_of(report):
    return [diag.code for diag in report.diagnostics]


# ----------------------------------------------------------------------
# Diagnostics engine
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_registry_is_well_formed(self):
        assert CODES
        for code, spec in CODES.items():
            assert code.startswith(("SR1", "CF2", "DL3"))
            assert spec.severity in ("error", "warning", "info")
            assert spec.slug
            assert spec.summary

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            make_diagnostic("XX999", "nope")

    def test_severity_override(self):
        diag = make_diagnostic("SR104", "msg",
                               severity_overrides={"SR104": "error"})
        assert diag.severity == "error"

    def test_render_carries_location_and_code(self):
        diag = make_diagnostic("SR102", "target out of range",
                               index=7, pc=0x101C)
        text = diag.render()
        assert "SR102" in text
        assert "error" in text
        assert "target out of range" in text

    def test_report_ok_counts_and_json(self):
        report = LintReport("prog")
        report.add(make_diagnostic("SR101", "dead block"))
        report.add(make_diagnostic("SR106", "oob store"))
        assert not report.ok  # SR106 is error severity
        assert len(report.errors()) == 1
        assert len(report.warnings()) == 1
        assert report.codes() == {"SR101": 1, "SR106": 1}
        summary = report.summary()
        assert summary["ok"] is False
        assert summary["errors"] == 1
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["program"] == "prog"
        assert len(payload["diagnostics"]) == 2
        assert "SR101" in report.render_text()

    def test_merge_reports(self):
        left = LintReport("p")
        left.add(make_diagnostic("SR105", "w"))
        right = LintReport("p")
        right.add(make_diagnostic("SR103", "e"))
        merged = merge_reports("p", left, right)
        assert sorted(codes_of(merged)) == ["SR103", "SR105"]


# ----------------------------------------------------------------------
# SR101..SR103: CFG-structural passes
# ----------------------------------------------------------------------
class TestControlFlow:
    def test_bad_branch_target_sr102(self):
        # The assembler resolves labels, so an out-of-range target can
        # only be seeded at the Program level.
        program = Program([
            Instruction("addi", rd=5, rs1=0, imm=1),
            Instruction("beq", rs1=5, rs2=0, target=99),
            Instruction("halt"),
        ], name="bad-target")
        report = check_branch_targets(program)
        assert codes_of(report) == ["SR102"]
        assert report.diagnostics[0].severity == "error"
        assert not lint_program(program).ok

    def test_negative_target_sr102(self):
        program = Program([
            Instruction("jal", rd=31, target=-2),
            Instruction("halt"),
        ], name="neg-target")
        assert codes_of(check_branch_targets(program)) == ["SR102"]

    def test_unreachable_block_sr101(self):
        program = assemble("""
    .text
main:
    j end
    addi r5, r5, 1
end:
    halt
""", name="dead-code")
        report = check_reachability(ControlFlowGraph(program))
        assert codes_of(report) == ["SR101"]
        # warning severity: the program still passes the error gate
        assert lint_program(program).ok

    def test_fallthrough_end_sr103(self):
        program = assemble("""
    .text
main:
    addi r5, r0, 1
    beq  r5, r0, main
""", name="falls-off")
        report = check_fallthrough_end(ControlFlowGraph(program))
        assert codes_of(report) == ["SR103"]
        assert not lint_program(program).ok

    def test_empty_program_sr103(self):
        program = Program([], name="empty")
        report = check_fallthrough_end(ControlFlowGraph(program))
        assert codes_of(report) == ["SR103"]

    def test_unreachable_fall_off_is_sr101_not_sr103(self):
        # The dangling tail is dead code; only SR101 should fire for it.
        program = assemble("""
    .text
main:
    halt
    addi r5, r0, 1
""", name="dead-tail")
        cfg = ControlFlowGraph(program)
        assert codes_of(check_fallthrough_end(cfg)) == []
        assert codes_of(check_reachability(cfg)) == ["SR101"]

    def test_clean_program_has_no_structural_findings(self, sum_program):
        report = lint_program(sum_program)
        assert report.ok
        assert len(report) == 0


# ----------------------------------------------------------------------
# SR104/SR105: register dataflow
# ----------------------------------------------------------------------
class TestRegisterDataflow:
    def test_use_before_def_sr104(self):
        program = assemble("""
    .text
main:
    addi r5, r0, 2
    add  r6, r5, r7
    halt
""", name="ubd")
        report = check_use_before_def(ControlFlowGraph(program))
        assert codes_of(report) == ["SR104"]
        assert report.diagnostics[0].data["register"] == "r7"

    def test_one_sided_write_still_flags(self):
        # r8 is written on only one side of the diamond: some path
        # reaches the read without a write (must-analysis).
        program = assemble("""
    .text
main:
    addi r5, r0, 1
    beq  r5, r0, other
    addi r8, r0, 7
other:
    add  r9, r8, r5
    halt
""", name="one-sided")
        report = check_use_before_def(ControlFlowGraph(program))
        assert codes_of(report) == ["SR104"]

    def test_both_sides_written_is_clean(self):
        program = assemble("""
    .text
main:
    addi r5, r0, 1
    beq  r5, r0, other
    addi r8, r0, 7
    j join
other:
    addi r8, r0, 9
join:
    add  r9, r8, r5
    halt
""", name="two-sided")
        assert codes_of(check_use_before_def(ControlFlowGraph(program))) == []

    def test_loop_carried_write_reaches_first_read(self):
        # r5 is read at the loop top but written before the loop: the
        # fixpoint must see the definition flow around the back-edge.
        program = assemble("""
    .text
main:
    addi r5, r0, 0
    addi r6, r0, 8
loop:
    addi r5, r5, 1
    blt  r5, r6, loop
    halt
""", name="loop-def")
        assert codes_of(check_use_before_def(ControlFlowGraph(program))) == []

    def test_sp_and_zero_are_predefined(self):
        program = assemble("""
    .text
main:
    lw   r5, -4(r29)
    add  r6, r0, r5
    halt
""", name="sp-read")
        assert codes_of(check_use_before_def(ControlFlowGraph(program))) == []

    def test_write_to_zero_sr105(self):
        program = assemble("""
    .text
main:
    add r0, r5, r6
    halt
""", name="r0-write")
        report = check_register_writes(program)
        assert codes_of(report) == ["SR105"]

    def test_canonical_nop_is_exempt(self):
        program = assemble("""
    .text
main:
    nop
    halt
""", name="nop-ok")
        assert codes_of(check_register_writes(program)) == []

    def test_jal_linking_through_zero_sr105(self):
        # The assembler always links ``jal`` through r31, so build the
        # rd=0 encoding directly: its link write names the hardwired
        # zero register, the static shadow of the simulator bug where
        # an unguarded link write clobbered r0.
        from repro.isa.instructions import Instruction
        from repro.isa.program import Program
        program = Program([Instruction("jal", rd=0, target=1),
                           Instruction("halt")], name="jal-r0")
        assert codes_of(check_register_writes(program)) == ["SR105"]


# ----------------------------------------------------------------------
# SR106: memory bounds
# ----------------------------------------------------------------------
class TestMemoryBounds:
    def test_out_of_footprint_store_sr106(self):
        program = assemble("""
    .data
buf:    .word 0
    .space 12
    .text
main:
    la   r4, buf
    addi r5, r0, 1
    sw   r5, 64(r4)
    halt
""", name="oob-store")
        report = check_memory_bounds(ControlFlowGraph(program))
        assert codes_of(report) == ["SR106"]
        assert report.diagnostics[0].severity == "error"
        assert not lint_program(program).ok

    def test_partially_out_of_image_load_sr106(self):
        # 4-byte load whose final byte crosses the end of the image.
        program = assemble("""
    .data
buf:    .word 0, 0
    .text
main:
    la   r4, buf
    lw   r5, 6(r4)
    halt
""", name="straddle")
        assert codes_of(check_memory_bounds(ControlFlowGraph(program))) \
            == ["SR106"]

    def test_in_bounds_and_stack_accesses_are_clean(self):
        program = assemble("""
    .data
buf:    .word 1, 2, 3, 4
    .text
main:
    la   r4, buf
    lw   r5, 8(r4)
    sw   r5, -8(r29)
    halt
""", name="in-bounds")
        assert codes_of(check_memory_bounds(ControlFlowGraph(program))) == []

    def test_loop_pointer_is_not_a_constant(self):
        # The advancing pointer walks past the image, but its value is
        # not statically provable, so no SR106 may fire.
        program = assemble("""
    .data
buf:    .word 0
    .space 28
    .text
main:
    la   r4, buf
    addi r6, r0, 0
    addi r7, r0, 1000
loop:
    lw   r5, 0(r4)
    addi r4, r4, 4
    addi r6, r6, 1
    blt  r6, r7, loop
    halt
""", name="walker")
        assert codes_of(check_memory_bounds(ControlFlowGraph(program))) == []

    def test_zero_based_absolute_access_sr106(self):
        program = assemble("""
    .text
main:
    lw   r5, 16(r0)
    halt
""", name="null-deref")
        assert codes_of(check_memory_bounds(ControlFlowGraph(program))) \
            == ["SR106"]


# ----------------------------------------------------------------------
# lint_program: the fused entry point
# ----------------------------------------------------------------------
class TestLintProgram:
    def test_collects_across_passes(self):
        program = assemble("""
    .data
buf:    .word 0
    .text
main:
    add  r6, r5, r7
    la   r4, buf
    sw   r6, 640(r4)
    halt
""", name="broken")
        report = lint_program(program)
        codes = report.codes()
        assert codes.get("SR104") == 2  # r5 and r7
        assert codes.get("SR106") == 1
        assert not report.ok

    def test_severity_overrides_flow_through(self):
        program = assemble("""
    .text
main:
    add  r6, r5, r0
    halt
""", name="promoted")
        assert lint_program(program).ok
        demoted = lint_program(program,
                               severity_overrides={"SR104": "error"})
        assert not demoted.ok
