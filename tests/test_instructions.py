"""Unit tests for the opcode table and Instruction record."""

import pytest

from repro.isa.instructions import (
    ICLASS_NAMES,
    IClass,
    Instruction,
    OPCODES,
    make_jal,
)
from repro.isa.registers import REG_RA


class TestOpcodeTable:
    def test_class_names_cover_all_classes(self):
        assert len(ICLASS_NAMES) == IClass.COUNT

    def test_every_opcode_has_valid_class(self):
        for spec in OPCODES.values():
            assert 0 <= spec.iclass < IClass.COUNT

    @pytest.mark.parametrize("name,iclass", [
        ("add", IClass.IALU), ("addi", IClass.IALU), ("lui", IClass.IALU),
        ("mul", IClass.IMUL), ("div", IClass.IDIV), ("rem", IClass.IDIV),
        ("fadd", IClass.FALU), ("fmul", IClass.FMUL), ("fdiv", IClass.FDIV),
        ("fsqrt", IClass.FDIV), ("lw", IClass.LOAD), ("flw", IClass.LOAD),
        ("sw", IClass.STORE), ("fsw", IClass.STORE), ("beq", IClass.BRANCH),
        ("j", IClass.JUMP), ("jal", IClass.JUMP), ("jr", IClass.JUMP),
        ("halt", IClass.OTHER),
    ])
    def test_expected_classes(self, name, iclass):
        assert OPCODES[name].iclass == iclass

    def test_memory_classes(self):
        assert IClass.LOAD in IClass.MEMORY
        assert IClass.STORE in IClass.MEMORY
        assert IClass.IALU not in IClass.MEMORY


class TestInstruction:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate")

    def test_srcs_collects_operands(self):
        instr = Instruction("add", rd=5, rs1=6, rs2=7)
        assert instr.srcs == (6, 7)
        assert instr.rd == 5

    def test_srcs_single_operand(self):
        instr = Instruction("addi", rd=5, rs1=6, imm=1)
        assert instr.srcs == (6,)

    def test_flags_load(self):
        instr = Instruction("lw", rd=5, rs1=6, imm=0)
        assert instr.is_mem
        assert not instr.is_cond_branch
        assert not instr.is_ctrl

    def test_flags_branch(self):
        instr = Instruction("beq", rs1=1, rs2=2, target=7)
        assert instr.is_cond_branch
        assert instr.is_ctrl
        assert not instr.is_mem

    def test_flags_jump(self):
        instr = Instruction("j", target=0)
        assert instr.is_ctrl
        assert not instr.is_cond_branch

    def test_make_jal_writes_ra(self):
        instr = make_jal(12)
        assert instr.rd == REG_RA
        assert instr.target == 12


class TestRender:
    def test_render_r3(self):
        assert Instruction("add", rd=1, rs1=2, rs2=3).render() \
            == "add r1, r2, r3"

    def test_render_load(self):
        assert Instruction("lw", rd=4, rs1=5, imm=8).render() == "lw r4, 8(r5)"

    def test_render_store_operand_order(self):
        text = Instruction("sw", rs2=4, rs1=5, imm=-4).render()
        assert text == "sw r4, -4(r5)"

    def test_render_branch_with_label_map(self):
        instr = Instruction("bne", rs1=1, rs2=0, target=3)
        assert instr.render({3: "loop"}) == "bne r1, r0, loop"

    def test_render_branch_without_label_map(self):
        instr = Instruction("bne", rs1=1, rs2=0, target=3)
        assert "@3" in instr.render()

    def test_render_fp(self):
        assert Instruction("fadd", rd=33, rs1=34, rs2=35).render() \
            == "fadd f1, f2, f3"
