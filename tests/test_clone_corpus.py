"""Corpus-level clone fidelity: for a cross-domain sample of workloads,
the generated clone must reproduce the headline microarchitecture-
independent attributes of its original."""

import pytest

from repro.core import profile_trace
from repro.evaluation import workload_artifacts
from repro.isa.instructions import IClass
from repro.lint import lint_clone, lint_program
from repro.workloads import registry, workload_names

SAMPLE = ["qsort", "susan", "dijkstra", "sha", "adpcm", "fft",
          "stringsearch", "mpeg2dec"]


@pytest.fixture(scope="module")
def fidelity():
    cache = {}

    def get(name):
        if name not in cache:
            artifacts = workload_artifacts(name)
            cache[name] = (artifacts.profile,
                           profile_trace(artifacts.clone_trace))
        return cache[name]

    return get


@pytest.mark.parametrize("name", SAMPLE)
class TestCloneFidelityAcrossCorpus:
    def test_clone_runs_to_target_length(self, name, fidelity):
        _, clone_profile = fidelity(name)
        assert 60_000 <= clone_profile.total_instructions <= 240_000

    def test_memory_fraction(self, name, fidelity):
        original, clone = fidelity(name)
        real = original.total_memory_ops / original.total_instructions
        synthetic = clone.total_memory_ops / clone.total_instructions
        assert synthetic == pytest.approx(real, abs=0.08)

    def test_branch_fraction(self, name, fidelity):
        # Tolerance is looser than for memory ops: the modulo/random
        # condition-setup instructions cannot be discounted out of
        # single-digit-size blocks, which dilutes very branchy kernels
        # (susan) — the paper's divide-based mechanism dilutes likewise.
        original, clone = fidelity(name)
        real = original.total_branches / original.total_instructions
        synthetic = clone.total_branches / clone.total_instructions
        assert synthetic == pytest.approx(real, abs=0.12)

    def test_compute_class_mix(self, name, fidelity):
        original, clone = fidelity(name)
        real = original.mix_fractions()
        synthetic = clone.mix_fractions()
        for iclass in (IClass.IMUL, IClass.IDIV, IClass.FMUL, IClass.FDIV):
            assert synthetic[iclass] == pytest.approx(real[iclass],
                                                      abs=0.05)

    def test_taken_rate(self, name, fidelity):
        original, clone = fidelity(name)

        def weighted(profile):
            total = sum(b.count for b in profile.branches.values())
            return sum(b.taken_rate * b.count
                       for b in profile.branches.values()) / total

        assert weighted(clone) == pytest.approx(weighted(original),
                                                abs=0.15)

    def test_footprint_order_of_magnitude(self, name, fidelity):
        original, clone = fidelity(name)
        ratio = clone.data_footprint_bytes / original.data_footprint_bytes
        assert 0.2 <= ratio <= 8.0

    def test_clone_is_loopy(self, name, fidelity):
        _, clone = fidelity(name)
        # The clone re-executes its body, so dynamic blocks >> static.
        visits = sum(stats.visits for stats in clone.blocks.values())
        assert visits > 3 * len(clone.blocks)


# ----------------------------------------------------------------------
# Static analysis over the corpus: every kernel and every synthesized
# clone must carry zero error-severity lint findings.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", workload_names())
def test_every_kernel_is_structurally_clean(name):
    report = lint_program(registry()[name].build())
    assert report.errors() == [], report.render_text()


@pytest.mark.parametrize("name", SAMPLE)
def test_sampled_clones_pass_full_lint(name):
    clone = workload_artifacts(name).clone
    report = lint_clone(clone)
    assert report.errors() == [], report.render_text()
    # the gate already ran at synthesis time and recorded its verdict
    assert clone.stats["lint"]["ok"] is True
