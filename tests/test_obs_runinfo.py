"""Run manifests: round-trip, schema validation, config hashing."""

import json

import pytest

from repro.obs.runinfo import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    provenance,
    validate_manifest,
)
from repro.uarch import BASE_CONFIG
from repro.uarch.config import MachineConfig


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        assert config_hash(MachineConfig()) == config_hash(MachineConfig())

    def test_differs_when_a_field_changes(self):
        assert (config_hash(BASE_CONFIG)
                != config_hash(BASE_CONFIG.renamed("wide", width=4)))

    def test_non_dataclass_values_hash_too(self):
        assert config_hash({"a": 1}) == config_hash({"a": 1})


class TestProvenance:
    def test_block_has_required_keys(self):
        block = provenance()
        for key in ("python", "platform", "created_at", "git_rev"):
            assert key in block


class TestManifestRoundTrip:
    def _manifest(self):
        return RunManifest(
            command="compare", target="crc32", seed=7,
            config_hash=config_hash(BASE_CONFIG), wall_seconds=1.25,
            headline={"ipc_real": 0.9},
            phases={"profile": {"count": 1, "wall_s": 0.1, "cpu_s": 0.1}},
            metrics={"sim.mips": {"type": "gauge", "value": 3.0}})

    def test_save_load_round_trip(self, tmp_path):
        manifest = self._manifest()
        path = manifest.save(tmp_path / "run")
        assert path.endswith("manifest.json")
        loaded = RunManifest.load(tmp_path / "run")  # by directory
        assert loaded == manifest
        assert RunManifest.load(path) == manifest  # by file path

    def test_to_dict_is_json_serializable(self):
        json.dumps(self._manifest().to_dict())

    def test_validate_accepts_round_trip(self, tmp_path):
        path = self._manifest().save(tmp_path)
        with open(path) as handle:
            assert validate_manifest(json.load(handle)) == []

    def test_load_rejects_invalid(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"command": 3}')
        with pytest.raises(ValueError):
            RunManifest.load(tmp_path)

    def test_collect_pulls_global_telemetry(self):
        from repro.obs import REGISTRY, TRACER, reset_telemetry
        reset_telemetry()
        REGISTRY.counter("t.count").inc(2)
        with TRACER.span("t.phase"):
            pass
        manifest = RunManifest.collect("test", target="x", seed=1,
                                       config=BASE_CONFIG)
        assert manifest.metrics["t.count"]["value"] == 2
        assert "t.phase" in manifest.phases
        assert manifest.config_hash == config_hash(BASE_CONFIG)
        assert validate_manifest(manifest.to_dict()) == []
        reset_telemetry()


class TestValidateManifest:
    def test_not_a_dict(self):
        assert validate_manifest([]) == ["manifest is not an object"]

    def test_missing_required_keys_reported(self):
        errors = validate_manifest({})
        assert any("command" in error for error in errors)
        assert any("schema_version" in error for error in errors)

    def test_newer_schema_rejected(self, tmp_path):
        data = RunManifest(command="x").to_dict()
        data["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        assert any("newer" in error for error in validate_manifest(data))

    def test_malformed_phase_reported(self):
        data = RunManifest(command="x").to_dict()
        data["phases"] = {"p": {"count": 1}}
        assert any("phase" in error for error in validate_manifest(data))

    def test_negative_wall_time_reported(self):
        data = RunManifest(command="x").to_dict()
        data["wall_seconds"] = -1
        assert any("negative" in error for error in validate_manifest(data))
