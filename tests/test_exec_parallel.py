"""Parallel grid runner: job resolution, ordering, serial equivalence."""

import os

from repro.evaluation import cache_correlation_study, stride_coverage_table
from repro.exec import parallel_map, resolve_jobs, shared_state_map
from repro.uarch import CacheConfig


class TestResolveJobs:
    def test_default_serial(self):
        assert resolve_jobs(None, environ={}) == 1

    def test_explicit_argument_wins(self):
        assert resolve_jobs(3, environ={"REPRO_JOBS": "8"}) == 3

    def test_env_fallback(self):
        assert resolve_jobs(None, environ={"REPRO_JOBS": "4"}) == 4

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0, environ={}) == (os.cpu_count() or 1)
        assert resolve_jobs(None, environ={"REPRO_JOBS": "0"}) \
            == (os.cpu_count() or 1)

    def test_unparseable_env_is_serial(self):
        assert resolve_jobs(None, environ={"REPRO_JOBS": "many"}) == 1

    def test_negative_clamps_to_serial(self):
        assert resolve_jobs(-2, environ={}) == 1


def square(value):
    return value * value


def scaled(state, value):
    return state * value


class TestParallelMap:
    def test_serial_is_plain_loop(self):
        # jobs=1 must not require picklable callables.
        assert parallel_map(lambda v: v + 1, [1, 2, 3], jobs=1) == [2, 3, 4]

    def test_parallel_preserves_order(self):
        items = list(range(40))
        assert parallel_map(square, items, jobs=4) \
            == [square(v) for v in items]

    def test_single_item_stays_serial(self):
        assert parallel_map(lambda v: v, ["only"], jobs=8) == ["only"]

    def test_empty(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_parallel_equals_serial(self):
        items = list(range(25))
        assert parallel_map(square, items, jobs=3) \
            == parallel_map(square, items, jobs=1)


class TestSharedStateMap:
    def test_serial_passes_state_directly(self):
        state = object()  # unpicklable on purpose
        assert shared_state_map(lambda s, v: s is state,
                                [1, 2], state, jobs=1) == [True, True]

    def test_parallel_equals_serial(self):
        items = list(range(20))
        serial = shared_state_map(scaled, items, 7, jobs=1)
        parallel = shared_state_map(scaled, items, 7, jobs=4)
        assert parallel == serial == [7 * v for v in items]


class TestExperimentEquality:
    """Parallel experiment grids are numerically identical to serial."""

    NAMES = ["crc32", "sha"]
    CONFIGS = [CacheConfig(256, 1, 32), CacheConfig(1024, 2, 32),
               CacheConfig(4096, 4, 32)]

    def test_cache_correlation_study(self):
        serial = cache_correlation_study(names=self.NAMES,
                                         configs=self.CONFIGS, jobs=1)
        parallel = cache_correlation_study(names=self.NAMES,
                                           configs=self.CONFIGS, jobs=2)
        assert parallel["correlations"] == serial["correlations"]
        assert parallel["mpi_real"] == serial["mpi_real"]
        assert parallel["mpi_clone"] == serial["mpi_clone"]
        assert parallel["mean_rank_real"] == serial["mean_rank_real"]
        assert parallel["ranking_correlation"] \
            == serial["ranking_correlation"]

    def test_stride_coverage_table(self):
        assert stride_coverage_table(names=self.NAMES, jobs=2) \
            == stride_coverage_table(names=self.NAMES, jobs=1)
