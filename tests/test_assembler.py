"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblerError, assemble
from repro.isa.assembler import DATA_BASE, _li_sequence
from repro.isa.instructions import IClass


def asm(body, data=""):
    source = ""
    if data:
        source += "    .data\n" + data + "\n"
    source += "    .text\n" + body + "\n    halt\n"
    return assemble(source)


class TestBasicParsing:
    def test_empty_text(self):
        program = assemble("    .text\n    halt\n")
        assert len(program) == 1

    def test_comments_stripped(self):
        program = asm("    add r1, r2, r3  # comment\n    nop ; also")
        assert len(program) == 3

    def test_label_shared_line(self):
        program = assemble("    .text\nmain:    halt\n")
        assert program.labels["main"] == 0

    def test_label_own_line(self):
        program = asm("foo:\n    add r1, r1, r1\n    j foo")
        assert program.labels["foo"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            asm("a:\n    nop\na:\n    nop")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            asm("    bogus r1, r2")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("    .nonsense 4\n")

    def test_undefined_branch_label(self):
        with pytest.raises(AssemblerError):
            asm("    beq r0, r0, nowhere")

    def test_operand_count_checked(self):
        with pytest.raises(AssemblerError):
            asm("    add r1, r2")


class TestDataSection:
    def test_word_values(self, sum_program):
        base = sum_program.data_symbols["vals"]
        assert base == DATA_BASE

    def test_word_layout(self):
        program = asm("    nop", data="a:  .word 1, 2, 3")
        image = program.data_image
        assert image[0:4] == (1).to_bytes(4, "little")
        assert image[8:12] == (3).to_bytes(4, "little")

    def test_negative_word(self):
        program = asm("    nop", data="a:  .word -1")
        assert program.data_image[0:4] == b"\xff\xff\xff\xff"

    def test_byte_directive(self):
        program = asm("    nop", data="a:  .byte 1, 2, 255")
        assert program.data_image[0:3] == bytes([1, 2, 255])

    def test_space_zeros(self):
        program = asm("    nop", data="a:  .space 16\nb: .word 7")
        assert program.data_symbols["b"] == DATA_BASE + 16
        assert program.data_image[0:16] == bytes(16)

    def test_align(self):
        program = asm("    nop", data="a: .byte 1\n    .align 8\nb: .word 2")
        assert program.data_symbols["b"] % 8 == 0

    def test_double_aligned_and_encoded(self):
        import struct
        program = asm("    nop", data="d:  .double 1.5")
        offset = program.data_symbols["d"] - DATA_BASE
        value = struct.unpack_from("<d", program.data_image, offset)[0]
        assert value == 1.5

    def test_word_symbol_reference(self):
        program = asm("    nop", data="a: .word 9\nptr: .word a")
        offset = program.data_symbols["ptr"] - DATA_BASE
        stored = int.from_bytes(program.data_image[offset:offset + 4],
                                "little")
        assert stored == program.data_symbols["a"]

    def test_duplicate_data_label(self):
        with pytest.raises(AssemblerError):
            asm("    nop", data="a: .word 1\na: .word 2")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("    .data\n    add r1, r2, r3\n")


class TestPseudoOps:
    def test_nop_expands_to_add(self):
        program = asm("    nop")
        assert program.instructions[0].opcode == "add"
        assert program.instructions[0].rd == 0

    def test_li_small(self):
        program = asm("    li r5, 42")
        assert program.instructions[0].opcode == "addi"
        assert program.instructions[0].imm == 42

    def test_li_negative_small(self):
        program = asm("    li r5, -3")
        assert program.instructions[0].imm == -3

    def test_li_large_expands(self):
        assert len(_li_sequence(5, 0x12345678)) == 2
        assert len(_li_sequence(5, 42)) == 1
        assert len(_li_sequence(5, 0x10000)) == 1  # lui only

    def test_la_two_instructions(self):
        program = asm("    la r4, tab\n    nop", data="tab: .word 1")
        assert program.instructions[0].opcode == "lui"
        assert program.instructions[1].opcode == "ori"

    def test_la_undefined_symbol(self):
        with pytest.raises(AssemblerError):
            asm("    la r4, missing")

    def test_mv(self):
        program = asm("    mv r5, r6")
        instr = program.instructions[0]
        assert instr.opcode == "add" and instr.srcs[0] == 6

    def test_not_neg(self):
        program = asm("    not r5, r6\n    neg r7, r8")
        assert program.instructions[0].opcode == "nor"
        assert program.instructions[1].opcode == "sub"

    def test_branch_swaps(self):
        program = asm("x:\n    bgt r1, r2, x\n    ble r3, r4, x")
        bgt = program.instructions[0]
        assert bgt.opcode == "blt" and bgt.srcs == (2, 1)
        ble = program.instructions[1]
        assert ble.opcode == "bge" and ble.srcs == (4, 3)

    def test_zero_branches(self):
        program = asm("x:\n    beqz r1, x\n    bgtz r2, x\n    blez r3, x")
        assert program.instructions[0].opcode == "beq"
        assert program.instructions[1].srcs == (0, 2)  # blt r0, r2
        assert program.instructions[2].srcs == (0, 3)  # bge r0, r3

    def test_b_unconditional(self):
        program = asm("x:\n    b x")
        assert program.instructions[0].iclass == IClass.JUMP


class TestTargets:
    def test_forward_and_backward_targets(self):
        program = asm("""
top:
    beq r0, r0, bottom
    j top
bottom:
    nop""")
        assert program.instructions[0].target == 2
        assert program.instructions[1].target == 0

    def test_branch_to_data_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            asm("    beq r0, r0, tab", data="tab: .word 1")

    def test_la_targets_resolve_after_expansion(self):
        # Labels after a `la` must account for its two-slot expansion.
        program = asm("""
    la r4, tab
after:
    j after""", data="tab: .word 1")
        assert program.labels["after"] == 2
        assert program.instructions[2].target == 2


class TestErrorLocations:
    """Every assembly error names the source line and offending token."""

    def raises(self, source, name="prog"):
        with pytest.raises(AssemblerError) as excinfo:
            assemble(source, name=name)
        return str(excinfo.value)

    def test_undefined_branch_label_names_line(self):
        message = self.raises(
            "    .text\nmain:\n    beq r1, r0, nowhere\n    halt\n")
        assert message.startswith("prog:3: ")
        assert "'nowhere'" in message

    def test_operand_count_error_names_line(self):
        message = self.raises("    .text\n    nop\n    addi r5, r0\n")
        assert message.startswith("prog:3: ")
        assert "addi" in message

    def test_bad_register_names_line(self):
        message = self.raises("    .text\n    addi r99, r0, 1\n")
        assert message.startswith("prog:2: ")
        assert "r99" in message

    def test_unknown_directive_names_line(self):
        message = self.raises("    .data\n    .quux 4\n")
        assert message.startswith("prog:2: ")
        assert ".quux" in message

    def test_instruction_outside_text_names_line(self):
        message = self.raises("    .data\n    addi r5, r0, 1\n")
        assert message.startswith("prog:2: ")

    def test_duplicate_data_label_names_line(self):
        message = self.raises(
            "    .data\nx: .word 1\nx: .word 2\n    .text\n    halt\n")
        assert message.startswith("prog:3: ")
        assert "'x'" in message

    def test_duplicate_text_label_names_line(self):
        message = self.raises(
            "    .text\nmain:\n    nop\nmain:\n    halt\n")
        assert message.startswith("prog:4: ")
        assert "'main'" in message

    def test_undefined_la_symbol_names_its_line(self):
        # `la` is patched after layout: the recorded line must survive
        # to the second pass instead of pointing at the end of file.
        message = self.raises(
            "    .text\n    nop\n    la r4, ghost\n    j 0\n    halt\n")
        assert message.startswith("prog:3: ")
        assert "'ghost'" in message

    def test_branch_fixup_line_survives_forward_reference(self):
        message = self.raises(
            "    .text\n    nop\n    nop\n    bne r1, r0, missing\n"
            "    halt\n")
        assert message.startswith("prog:4: ")
