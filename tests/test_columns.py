"""Shared columnar program tables: build-once contract + field fidelity.

The whole point of ``ProgramColumns`` is that the per-instruction walk
over ``program.instructions`` happens *once* per program per process,
and every consumer — functional sim, turbo, profiler, conformance lint,
pipeline model, sweep digests — shares the same struct-of-arrays view.
This suite pins both halves: the columns agree with the Instruction
objects they were derived from, and driving the full consumer stack
never triggers a second build.
"""

import numpy as np
import pytest

from repro.core import profile_trace
from repro.isa import IClass, POOL_OF_CLASS, columns_for
from repro.isa.columns import BUILD_COUNTS
from repro.lint import lint_program
from repro.sim import FunctionalSimulator
from repro.uarch import BASE_CONFIG, simulate_pipeline, simulate_pipeline_sweep
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def program():
    return build_workload("crc32")


@pytest.fixture(scope="module")
def columns(program):
    return columns_for(program)


class TestFieldFidelity:
    def test_decode_columns_match_instructions(self, program, columns):
        for pc, instruction in enumerate(program.instructions):
            assert columns.iclass[pc] == int(instruction.iclass)
            dest = instruction.rd if instruction.rd is not None else -1
            assert columns.dest[pc] == dest
            srcs = tuple(instruction.srcs)
            padded = srcs + (-1,) * (2 - len(srcs))
            assert (columns.src1[pc], columns.src2[pc]) == padded
            assert columns.srcs_list[pc] == srcs
            assert columns.pool_list[pc] \
                == POOL_OF_CLASS[int(instruction.iclass)]

    def test_class_masks_consistent(self, columns):
        assert np.array_equal(columns.is_mem,
                              columns.is_load | columns.is_store)
        assert np.array_equal(columns.is_load,
                              columns.iclass == int(IClass.LOAD))
        assert np.array_equal(columns.is_store,
                              columns.iclass == int(IClass.STORE))

    def test_block_tables_tile_program(self, program, columns):
        sizes = [high - low for low, high in columns.block_bounds]
        assert sum(sizes) == len(program.instructions)
        for bid, (low, high) in enumerate(columns.block_bounds):
            assert (columns.block_of[low:high] == bid).all()


class TestBuildOnce:
    def test_columns_are_cached(self, program):
        assert columns_for(program) is columns_for(program)

    def test_consumer_stack_builds_once(self):
        # A fresh program (not the module fixture) so the count below
        # covers the *whole* consumer stack from a cold start.
        program = build_workload("sha")
        before = BUILD_COUNTS.get(program.name, 0)
        trace = FunctionalSimulator(program).run(
            max_instructions=200_000, trace=True)
        profile_trace(trace)
        lint_program(program)
        simulate_pipeline(trace, BASE_CONFIG, max_instructions=20_000)
        simulate_pipeline_sweep(trace, [BASE_CONFIG],
                                max_instructions=20_000, store=None)
        assert BUILD_COUNTS[program.name] == before + 1
