"""Functional-simulator semantics, opcode by opcode."""

import pytest

from repro.isa import assemble
from repro.isa.registers import REG_SP, fp_reg
from repro.sim import FunctionalSimulator, SimulationError, run_program


def run(body, data=""):
    source = ""
    if data:
        source += "    .data\n" + data + "\n"
    source += "    .text\n" + body + "\n    halt\n"
    simulator = FunctionalSimulator(assemble(source))
    simulator.run()
    return simulator


def reg(simulator, number):
    return simulator.regs[number]


def sreg(simulator, number):
    value = simulator.regs[number]
    return value - 0x100000000 if value & 0x80000000 else value


class TestIntArithmetic:
    def test_add_sub(self):
        s = run("    li r1, 7\n    li r2, 5\n    add r3, r1, r2\n"
                "    sub r4, r1, r2")
        assert reg(s, 3) == 12 and reg(s, 4) == 2

    def test_add_wraps_32_bits(self):
        s = run("    li r1, 0x7FFFFFFF\n    addi r2, r1, 1")
        assert reg(s, 2) == 0x80000000

    def test_sub_underflow_wraps(self):
        s = run("    li r1, 0\n    addi r2, r1, -1")
        assert reg(s, 2) == 0xFFFFFFFF

    def test_logic_ops(self):
        s = run("    li r1, 0b1100\n    li r2, 0b1010\n"
                "    and r3, r1, r2\n    or r4, r1, r2\n"
                "    xor r5, r1, r2\n    nor r6, r1, r2")
        assert reg(s, 3) == 0b1000
        assert reg(s, 4) == 0b1110
        assert reg(s, 5) == 0b0110
        assert reg(s, 6) == 0xFFFFFFF1

    def test_shifts(self):
        s = run("    li r1, -8\n    li r2, 2\n"
                "    sll r3, r1, r2\n    srl r4, r1, r2\n    sra r5, r1, r2")
        assert reg(s, 3) == (0xFFFFFFF8 << 2) & 0xFFFFFFFF
        assert reg(s, 4) == 0xFFFFFFF8 >> 2
        assert sreg(s, 5) == -2

    def test_shift_amount_masked_to_5_bits(self):
        s = run("    li r1, 1\n    li r2, 33\n    sll r3, r1, r2")
        assert reg(s, 3) == 2

    def test_immediate_variants(self):
        s = run("    li r1, 0xF0\n    andi r2, r1, 0x30\n"
                "    ori r3, r1, 0x0F\n    xori r4, r1, 0xFF\n"
                "    slli r5, r1, 1\n    srli r6, r1, 4\n    srai r7, r1, 4")
        assert reg(s, 2) == 0x30
        assert reg(s, 3) == 0xFF
        assert reg(s, 4) == 0x0F
        assert reg(s, 5) == 0x1E0
        assert reg(s, 6) == 0x0F
        assert reg(s, 7) == 0x0F

    def test_set_less_than(self):
        s = run("    li r1, -1\n    li r2, 1\n"
                "    slt r3, r1, r2\n    sltu r4, r1, r2\n"
                "    slti r5, r1, 0\n    sltiu r6, r2, 2")
        assert reg(s, 3) == 1  # -1 < 1 signed
        assert reg(s, 4) == 0  # 0xffffffff > 1 unsigned
        assert reg(s, 5) == 1
        assert reg(s, 6) == 1

    def test_lui(self):
        s = run("    lui r1, 0x1234")
        assert reg(s, 1) == 0x12340000

    def test_r0_ignores_writes(self):
        s = run("    addi r0, r0, 99\n    add r1, r0, r0")
        assert reg(s, 0) == 0 and reg(s, 1) == 0


class TestMulDiv:
    def test_mul_signed(self):
        s = run("    li r1, -3\n    li r2, 7\n    mul r3, r1, r2")
        assert sreg(s, 3) == -21

    def test_mulh(self):
        s = run("    li r1, 0x10000\n    li r2, 0x10000\n    mulh r3, r1, r2")
        assert reg(s, 3) == 1

    def test_div_truncates_toward_zero(self):
        s = run("    li r1, -7\n    li r2, 2\n    div r3, r1, r2\n"
                "    rem r4, r1, r2")
        assert sreg(s, 3) == -3
        assert sreg(s, 4) == -1

    def test_div_by_zero_yields_zero(self):
        s = run("    li r1, 5\n    div r2, r1, r0\n    rem r3, r1, r0\n"
                "    divu r4, r1, r0\n    remu r5, r1, r0")
        assert reg(s, 2) == 0 and reg(s, 3) == 0
        assert reg(s, 4) == 0 and reg(s, 5) == 0

    def test_divu_remu(self):
        s = run("    li r1, -1\n    li r2, 16\n"
                "    divu r3, r1, r2\n    remu r4, r1, r2")
        assert reg(s, 3) == 0xFFFFFFFF // 16
        assert reg(s, 4) == 0xFFFFFFFF % 16


class TestMemory:
    def test_word_round_trip(self):
        s = run("    la r4, buf\n    li r1, 0xBEEF\n    sw r1, 0(r4)\n"
                "    lw r2, 0(r4)", data="buf: .space 8")
        assert reg(s, 2) == 0xBEEF

    def test_load_initial_data(self):
        s = run("    la r4, vals\n    lw r1, 4(r4)", data="vals: .word 7, 9")
        assert reg(s, 1) == 9

    def test_byte_ops(self):
        s = run("    la r4, buf\n    li r1, 0x1FF\n    sb r1, 0(r4)\n"
                "    lbu r2, 0(r4)\n    lb r3, 0(r4)", data="buf: .space 4")
        assert reg(s, 2) == 0xFF
        assert sreg(s, 3) == -1

    def test_negative_offsets(self):
        s = run("    la r4, vals\n    addi r4, r4, 8\n    lw r1, -8(r4)",
                data="vals: .word 42, 0")
        assert reg(s, 1) == 42

    def test_fp_memory_round_trip(self):
        s = run("    la r4, buf\n    fli f1, 2.75\n    fsw f1, 0(r4)\n"
                "    flw f2, 0(r4)", data="buf: .space 16")
        assert s.regs[fp_reg(2)] == 2.75

    def test_out_of_range_load_raises(self):
        with pytest.raises(SimulationError):
            run("    li r4, -4\n    lw r1, 0(r4)")


class TestBranches:
    def test_taken_and_not_taken(self):
        s = run("""
    li r1, 1
    li r2, 2
    blt r1, r2, yes
    li r3, 111
yes:
    bge r1, r2, no
    li r4, 222
no:
    nop""")
        assert reg(s, 3) == 0
        assert reg(s, 4) == 222

    def test_signed_vs_unsigned_compare(self):
        s = run("""
    li r1, -1
    li r2, 1
    bltu r1, r2, uns
    li r3, 1
uns:
    blt r1, r2, sgn
    li r4, 1
sgn:
    nop""")
        assert reg(s, 3) == 1  # bltu not taken (0xffffffff > 1)
        assert reg(s, 4) == 0  # blt taken

    def test_beq_bne(self):
        s = run("""
    li r1, 5
    li r2, 5
    beq r1, r2, eq
    li r3, 1
eq:
    bne r1, r2, ne
    li r4, 1
ne:
    nop""")
        assert reg(s, 3) == 0
        assert reg(s, 4) == 1


class TestJumps:
    def test_jal_jr_round_trip(self):
        s = run("""
    jal func
    li r2, 10
    j end
func:
    li r1, 5
    jr r31
end:
    nop""")
        assert reg(s, 1) == 5
        assert reg(s, 2) == 10

    def test_jalr(self):
        s = run("""
    la r4, ftab
    lw r5, 0(r4)
    jalr r6, r5
    j end
target:
    li r1, 77
    jr r6
end:
    nop""", data="ftab: .word target")
        assert reg(s, 1) == 77


class TestFloat:
    def test_arith(self):
        s = run("    fli f1, 3.0\n    fli f2, 2.0\n"
                "    fadd f3, f1, f2\n    fsub f4, f1, f2\n"
                "    fmul f5, f1, f2\n    fdiv f6, f1, f2")
        regs = s.regs
        assert regs[fp_reg(3)] == 5.0
        assert regs[fp_reg(4)] == 1.0
        assert regs[fp_reg(5)] == 6.0
        assert regs[fp_reg(6)] == 1.5

    def test_fdiv_by_zero_is_zero(self):
        s = run("    fli f1, 3.0\n    fli f2, 0.0\n    fdiv f3, f1, f2")
        assert s.regs[fp_reg(3)] == 0.0

    def test_fsqrt(self):
        s = run("    fli f1, 9.0\n    fsqrt f2, f1")
        assert s.regs[fp_reg(2)] == 3.0

    def test_fsqrt_negative_clamped(self):
        s = run("    fli f1, -4.0\n    fsqrt f2, f1")
        assert s.regs[fp_reg(2)] == 0.0

    def test_unary_and_minmax(self):
        s = run("    fli f1, -2.5\n    fneg f2, f1\n    fabs f3, f1\n"
                "    fli f4, 1.0\n    fmin f5, f1, f4\n    fmax f6, f1, f4\n"
                "    fmv f7, f1")
        regs = s.regs
        assert regs[fp_reg(2)] == 2.5
        assert regs[fp_reg(3)] == 2.5
        assert regs[fp_reg(5)] == -2.5
        assert regs[fp_reg(6)] == 1.0
        assert regs[fp_reg(7)] == -2.5

    def test_compares_write_int(self):
        s = run("    fli f1, 1.0\n    fli f2, 2.0\n"
                "    flt r1, f1, f2\n    fle r2, f2, f1\n    feq r3, f1, f1")
        assert reg(s, 1) == 1 and reg(s, 2) == 0 and reg(s, 3) == 1

    def test_conversions(self):
        s = run("    fli f1, -3.7\n    fcvtws r1, f1\n"
                "    li r2, -5\n    fcvtsw f2, r2")
        assert sreg(s, 1) == -3  # truncation
        assert s.regs[fp_reg(2)] == -5.0


class TestHarness:
    def test_initial_stack_pointer(self, sum_program):
        simulator = FunctionalSimulator(sum_program)
        assert simulator.regs[REG_SP] == sum_program.stack_top

    def test_instruction_cap(self):
        source = "    .text\nspin:\n    j spin\n    halt\n"
        with pytest.raises(SimulationError):
            FunctionalSimulator(assemble(source)).run(max_instructions=100)

    def test_run_program_counts(self, sum_program):
        trace = run_program(sum_program)
        simulator = run_program(sum_program, trace=False)
        assert simulator.instructions_executed == len(trace)
        assert simulator.halted

    def test_sum_result(self, sum_program):
        simulator = run_program(sum_program, trace=False)
        address = sum_program.data_symbols["result"]
        assert simulator.memory.read_word(address) == sum(
            [5, 3, 8, 1, 9, 2, 7, 4])


class TestSimulationErrorContext:
    def test_cap_error_carries_context(self):
        source = "    .text\nspin:\n    j spin\n    halt\n"
        program = assemble(source, name="spinner")
        with pytest.raises(SimulationError) as info:
            FunctionalSimulator(program).run(max_instructions=100)
        error = info.value
        assert error.pc == 0  # the spin loop's only instruction
        assert error.instructions == 101
        assert error.block == program.block_of(0)
        message = str(error)
        assert "spinner" in message
        assert "101 retired" in message
        assert "pc=0" in message
        assert "basic block" in message

    def test_pc_out_of_range_carries_context(self):
        with pytest.raises(SimulationError) as info:
            # Jump below the text segment base.
            FunctionalSimulator(assemble(
                "    .text\nmain:\n    li r1, 0\n    jr r1\n    halt")).run()
        assert info.value.pc is not None and info.value.pc < 0
        assert info.value.instructions >= 1
