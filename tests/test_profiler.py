"""Tests for the microarchitecture-independent profiler (paper Sec. 3.1)."""

import pytest

from repro.core import profile_program, profile_trace
from repro.core.profile import DEP_BUCKETS, NUM_DEP_BUCKETS, dep_bucket
from repro.isa import assemble
from repro.sim import run_program


def profile_of(body, data=""):
    source = ""
    if data:
        source += "    .data\n" + data + "\n"
    source += "    .text\n" + body + "\n    halt\n"
    return profile_program(assemble(source))


class TestBuckets:
    def test_bucket_edges(self):
        assert dep_bucket(1) == 0
        assert dep_bucket(2) == 1
        assert dep_bucket(3) == 2
        assert dep_bucket(4) == 2
        assert dep_bucket(6) == 3
        assert dep_bucket(8) == 4
        assert dep_bucket(16) == 5
        assert dep_bucket(32) == 6
        assert dep_bucket(33) == 7
        assert dep_bucket(10_000) == 7

    def test_bucket_count(self):
        assert NUM_DEP_BUCKETS == len(DEP_BUCKETS) + 1


class TestGlobalCounts:
    def test_totals(self, loop_nest_trace, loop_nest_profile):
        summary = loop_nest_trace.summary()
        assert loop_nest_profile.total_instructions == summary["instructions"]
        assert loop_nest_profile.total_memory_ops == summary["memory_ops"]
        assert loop_nest_profile.total_branches == summary["branches"]

    def test_mix_sums_to_total(self, loop_nest_profile):
        assert sum(loop_nest_profile.global_mix) \
            == loop_nest_profile.total_instructions

    def test_mix_fractions_sum_to_one(self, loop_nest_profile):
        assert sum(loop_nest_profile.mix_fractions()) == pytest.approx(1.0)

    def test_mean_block_size(self, loop_nest_profile):
        size = loop_nest_profile.mean_basic_block_size()
        assert 1.0 < size < 20.0


class TestFlowGraph:
    def test_block_visits_match_dynamics(self, loop_nest_profile):
        # Inner loop body runs 40 * 64 times.
        inner = [stats for stats in loop_nest_profile.blocks.values()
                 if stats.visits >= 2560 and stats.mem_pcs]
        assert inner, "inner loop block not found"

    def test_transition_counts_conserve_visits(self, loop_nest_profile):
        for bid, stats in loop_nest_profile.blocks.items():
            outgoing = sum(count for (pred, _), count
                           in loop_nest_profile.transitions.items()
                           if pred == bid)
            # Every visit except possibly the last has a successor.
            assert outgoing in (stats.visits, stats.visits - 1)

    def test_context_visits_sum_to_block_visits(self, loop_nest_profile):
        for bid, stats in loop_nest_profile.blocks.items():
            ctx_total = sum(ctx.visits for (_, block), ctx
                            in loop_nest_profile.contexts.items()
                            if block == bid)
            assert ctx_total == stats.visits

    def test_block_mix_matches_static_block(self, loop_nest_profile,
                                            loop_nest_program):
        for bid, stats in loop_nest_profile.blocks.items():
            block = loop_nest_program.basic_blocks()[bid]
            assert sum(stats.mix) == block.size

    def test_hot_blocks_ordering(self, loop_nest_profile):
        hot = loop_nest_profile.hot_blocks()
        weights = [loop_nest_profile.blocks[bid].visits
                   * loop_nest_profile.blocks[bid].size for bid in hot]
        assert weights == sorted(weights, reverse=True)
        assert loop_nest_profile.hot_blocks(limit=2) == hot[:2]


class TestDependencies:
    def test_simple_chain_distance_one(self):
        profile = profile_of("""
    li r1, 1
    li r2, 1000
loop:
    add r3, r1, r1
    add r4, r3, r3
    add r5, r4, r4
    addi r1, r1, 1
    blt r1, r2, loop""")
        fractions = profile.dep_fractions()
        assert fractions[0] > 0.5  # mostly distance-1 chains

    def test_long_distance_detected(self):
        body = ["    li r1, 1", "    li r2, 500", "loop:",
                "    add r3, r1, r0"]
        body += ["    add r4, r4, r4"] * 40
        body += ["    add r5, r3, r0",  # reads r3 written 41 earlier
                 "    addi r1, r1, 1", "    blt r1, r2, loop"]
        profile = profile_of("\n".join(body))
        assert profile.global_dep_hist[NUM_DEP_BUCKETS - 1] > 400

    def test_r0_reads_are_not_dependences(self):
        profile = profile_of("""
    li r1, 1
    li r2, 300
loop:
    add r3, r0, r0
    addi r1, r1, 1
    blt r1, r2, loop""")
        # Only r1 and the branch create dependences; r0 reads never do.
        # add r3, r0, r0 contributes nothing.
        hist = profile.global_dep_hist
        assert sum(hist) < 3 * 300


class TestStrides:
    def test_pure_stream_stride(self):
        profile = profile_of("""
    la r4, buf
    li r1, 0
    li r2, 200
loop:
    lw r3, 0(r4)
    addi r4, r4, 4
    addi r1, r1, 1
    blt r1, r2, loop""", data="buf: .space 1024")
        loads = [m for m in profile.mem_ops.values() if not m.is_store]
        assert len(loads) == 1
        stats = loads[0]
        assert stats.dominant_stride == 4
        assert stats.coverage > 0.99
        assert stats.count == 200
        assert profile.stride_coverage > 0.99

    def test_stride_zero_constant_address(self):
        profile = profile_of("""
    la r4, buf
    li r1, 0
    li r2, 100
loop:
    lw r3, 0(r4)
    addi r1, r1, 1
    blt r1, r2, loop""", data="buf: .word 7")
        stats = [m for m in profile.mem_ops.values() if not m.is_store][0]
        assert stats.dominant_stride == 0
        assert stats.footprint_bytes == 4

    def test_negative_stride(self):
        profile = profile_of("""
    la r4, buf
    addi r4, r4, 396
    li r1, 0
    li r2, 100
loop:
    lw r3, 0(r4)
    addi r4, r4, -4
    addi r1, r1, 1
    blt r1, r2, loop""", data="buf: .space 400")
        stats = [m for m in profile.mem_ops.values() if not m.is_store][0]
        assert stats.dominant_stride == -4

    def test_stream_reset_mean_length(self):
        # Walk 10 elements, reset, repeat: mean run length ~10.
        profile = profile_of("""
    li r1, 0
    li r2, 50
outer:
    la r4, buf
    li r5, 0
    li r6, 10
inner:
    lw r3, 0(r4)
    addi r4, r4, 4
    addi r5, r5, 1
    blt r5, r6, inner
    addi r1, r1, 1
    blt r1, r2, outer""", data="buf: .space 64")
        stats = [m for m in profile.mem_ops.values() if not m.is_store][0]
        assert 8.0 <= stats.mean_stream_length <= 10.0
        assert stats.coverage < 1.0  # resets break perfect coverage

    def test_alias_detection_rmw(self, loop_nest_profile):
        stores = [m for m in loop_nest_profile.mem_ops.values()
                  if m.is_store]
        assert any(store.alias_of >= 0 for store in stores)
        for store in stores:
            if store.alias_of >= 0:
                partner = loop_nest_profile.mem_ops[store.alias_of]
                assert not partner.is_store
                assert partner.dominant_stride == store.dominant_stride

    def test_local_fraction_for_dense_walk(self):
        profile = profile_of("""
    la r4, buf
    li r1, 0
    li r2, 200
loop:
    lw r3, 0(r4)
    addi r4, r4, 4
    addi r1, r1, 1
    blt r1, r2, loop""", data="buf: .space 1024")
        stats = [m for m in profile.mem_ops.values() if not m.is_store][0]
        assert stats.local_fraction > 0.99


class TestBranchStats:
    def test_loop_branch_rates(self):
        profile = profile_of("""
    li r1, 0
    li r2, 100
loop:
    addi r1, r1, 1
    blt r1, r2, loop""")
        stats = list(profile.branches.values())[0]
        assert stats.count == 100
        assert stats.taken_rate == pytest.approx(0.99)
        # One transition at loop exit over 99 boundaries.
        assert stats.transition_rate == pytest.approx(1 / 99)

    def test_alternating_branch(self):
        profile = profile_of("""
    li r1, 0
    li r2, 200
loop:
    andi r3, r1, 1
    beq r3, r0, skip
skip:
    addi r1, r1, 1
    blt r1, r2, loop""")
        parity = [stats for stats in profile.branches.values()
                  if 0.4 < stats.taken_rate < 0.6][0]
        assert parity.transition_rate > 0.99

    def test_data_footprint(self, loop_nest_profile, loop_nest_trace):
        assert loop_nest_profile.data_footprint_bytes \
            == 4 * loop_nest_trace.data_footprint(4)


class TestProfileTraceEquivalence:
    def test_profile_trace_matches_profile_program(self, loop_nest_program,
                                                   loop_nest_trace,
                                                   loop_nest_profile):
        direct = profile_trace(run_program(loop_nest_program))
        assert direct.to_dict() == loop_nest_profile.to_dict()


class TestProfilerReentrancy:
    def test_one_instance_profiles_many_traces(self, loop_nest_program,
                                               sum_program):
        # Regression: the profiler once stashed per-trace context tables
        # on ``self``, so a second ``profile()`` call could read state
        # left over from the first trace.  One instance interleaving two
        # workloads must match fresh single-use profilers exactly.
        from repro.core import WorkloadProfiler
        traces = [run_program(loop_nest_program),
                  run_program(sum_program)]
        expected = [WorkloadProfiler().profile(trace).to_dict()
                    for trace in traces]
        shared = WorkloadProfiler()
        for _ in range(2):  # interleave: A, B, A, B
            for trace, fresh in zip(traces, expected):
                assert shared.profile(trace).to_dict() == fresh
