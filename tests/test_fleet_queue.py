"""Lease/result queue: claim arbitration, reclaim, atomic publish."""

import json
import os

import pytest

from repro.fleet import FleetQueue


@pytest.fixture
def queue(tmp_path):
    q = FleetQueue(str(tmp_path / "run"), lease_ttl=60.0)
    q.ensure_dirs()
    return q


def plant_lease(queue, cell_id, pid=None, host=None, ts=None, worker="wX"):
    """Write a lease record as if another worker owned the cell."""
    record = {"worker": worker, "pid": pid,
              "host": queue.host if host is None else host,
              "ts": 0.0 if ts is None else ts}
    with open(queue.lease_path(cell_id), "w") as handle:
        json.dump(record, handle)


def find_dead_pid():
    """A pid that provably does not exist right now."""
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    return pid


class TestClaim:
    def test_claim_wins_exactly_once(self, queue):
        assert queue.claim("cell-a", "w0") is True
        assert queue.claim("cell-a", "w1") is False

    def test_claim_refused_after_result(self, queue):
        queue.claim("cell-a", "w0")
        queue.complete("cell-a", {"metrics": {}}, worker="w0")
        assert queue.claim("cell-a", "w1") is False

    def test_release_reopens_cell(self, queue):
        queue.claim("cell-a", "w0")
        queue.release("cell-a")
        assert queue.claim("cell-a", "w1") is True

    def test_lease_record_identifies_owner(self, queue):
        queue.claim("cell-a", "w0")
        info = queue.lease_info("cell-a")
        assert info["worker"] == "w0"
        assert info["pid"] == os.getpid()
        assert info["host"] == queue.host

    def test_heartbeat_refreshes_timestamp(self, queue):
        queue.claim("cell-a", "w0")
        before = queue.lease_info("cell-a")["ts"]
        queue.heartbeat("cell-a", "w0")
        assert queue.lease_info("cell-a")["ts"] >= before


class TestComplete:
    def test_publish_round_trips_and_drops_lease(self, queue):
        queue.claim("cell-a", "w0")
        queue.complete("cell-a", {"metrics": {"ipc": 1.5}}, worker="w0")
        assert queue.read_result("cell-a") == {"metrics": {"ipc": 1.5}}
        assert not os.path.exists(queue.lease_path("cell-a"))
        assert queue.completed_ids() == {"cell-a"}

    def test_republication_is_byte_identical(self, queue):
        payload = {"metrics": {"ipc": 1.5}, "cell": {"seed": 0}}
        queue.complete("cell-a", payload)
        first = open(queue.result_path("cell-a"), "rb").read()
        queue.complete("cell-a", payload)
        assert open(queue.result_path("cell-a"), "rb").read() == first

    def test_torn_result_reads_none(self, queue):
        with open(queue.result_path("cell-a"), "w") as handle:
            handle.write('{"metrics": {')
        assert queue.read_result("cell-a") is None


class TestReclaim:
    def test_dead_pid_reclaimed_immediately(self, queue):
        plant_lease(queue, "cell-a", pid=find_dead_pid(),
                    ts=9_999_999_999.0)  # heartbeat fresh forever
        assert queue.reclaim(["cell-a"], worker="w1") == ["cell-a"]
        assert queue.claim("cell-a", "w1") is True

    def test_live_same_host_pid_kept(self, queue):
        plant_lease(queue, "cell-a", pid=os.getppid(),
                    ts=9_999_999_999.0)
        assert queue.reclaim(["cell-a"]) == []

    def test_live_same_host_pid_kept_past_ttl(self, queue):
        # A cell can run longer than the TTL; a provably-live owner is
        # authoritative and its lease must not be expiry-reclaimed.
        plant_lease(queue, "cell-a", pid=os.getppid(), ts=0.0)
        assert queue.reclaim(["cell-a"]) == []

    def test_dead_same_host_pid_reclaimed_past_ttl(self, queue):
        plant_lease(queue, "cell-a", pid=find_dead_pid(), ts=0.0)
        assert queue.reclaim(["cell-a"]) == ["cell-a"]

    def test_own_pid_never_self_reclaimed(self, queue):
        queue.claim("cell-a", "w0")
        queue.heartbeat("cell-a", "w0")
        assert queue.reclaim(["cell-a"]) == []

    def test_foreign_host_needs_ttl(self, queue):
        import time
        plant_lease(queue, "cell-a", pid=1234, host="elsewhere",
                    ts=time.time())
        assert queue.reclaim(["cell-a"]) == []          # fresh: kept
        plant_lease(queue, "cell-b", pid=1234, host="elsewhere", ts=0.0)
        assert queue.reclaim(["cell-b"]) == ["cell-b"]  # stale: reclaimed

    def test_completed_cell_lease_swept_not_counted(self, queue):
        queue.complete("cell-a", {"metrics": {}})
        plant_lease(queue, "cell-a", pid=find_dead_pid())
        assert queue.reclaim(["cell-a"]) == []
        assert not os.path.exists(queue.lease_path("cell-a"))

    def test_torn_lease_ages_out_by_mtime(self, queue):
        path = queue.lease_path("cell-a")
        with open(path, "w") as handle:
            handle.write("{not json")
        os.utime(path, (0, 0))
        assert queue.reclaim(["cell-a"]) == ["cell-a"]

    def test_default_scan_covers_all_leases(self, queue):
        plant_lease(queue, "cell-a", pid=find_dead_pid())
        plant_lease(queue, "cell-b", pid=find_dead_pid())
        assert set(queue.reclaim()) == {"cell-a", "cell-b"}
