"""The post-synthesis lint gate inside CloneSynthesizer.synthesize()."""

import dataclasses

import pytest

from repro.core.baseline import MicroarchDependentSynthesizer
from repro.core.synthesizer import (CloneResult, CloneSynthesizer,
                                    SynthesisParameters)
from repro.isa import assemble
from repro.lint import LintGateError


class _SabotagedSynthesizer(CloneSynthesizer):
    """Inverts the clone's first always-taken branch after synthesis —
    the profile promises "taken", the emitted machinery says never."""

    def _synthesize(self):
        result = super()._synthesize()
        source = result.asm_source.replace(
            "    beq r0, r0, ", "    bne r0, r0, ", 1)
        assert source != result.asm_source
        return CloneResult(
            program=assemble(source, name=result.program.name),
            asm_source=source, profile=result.profile,
            parameters=result.parameters, stats=result.stats)


def _params(**overrides):
    return SynthesisParameters(dynamic_instructions=30_000, **overrides)


def test_clean_synthesis_records_verdict(loop_nest_clone):
    # conftest builds the session clone with the default gate ("error"),
    # so reaching here at all means the gate passed it.
    verdict = loop_nest_clone.stats["lint"]
    assert verdict["ok"] is True
    assert verdict["errors"] == 0


def test_error_mode_raises_on_divergent_clone(loop_nest_profile):
    synthesizer = _SabotagedSynthesizer(loop_nest_profile, _params())
    with pytest.raises(LintGateError) as excinfo:
        synthesizer.synthesize()
    report = excinfo.value.report
    assert not report.ok
    assert "CF203" in report.codes()
    assert "CF203" in str(excinfo.value)


def test_warn_mode_records_failure_without_raising(loop_nest_profile):
    synthesizer = _SabotagedSynthesizer(loop_nest_profile,
                                        _params(lint_gate="warn"))
    result = synthesizer.synthesize()
    assert result.stats["lint"]["ok"] is False
    assert "CF203" in result.stats["lint"]["codes"]


def test_off_mode_skips_linting(loop_nest_profile):
    synthesizer = _SabotagedSynthesizer(loop_nest_profile,
                                        _params(lint_gate="off"))
    result = synthesizer.synthesize()
    assert "lint" not in result.stats


def test_invalid_gate_mode_rejected(loop_nest_profile):
    with pytest.raises(ValueError):
        CloneSynthesizer(loop_nest_profile, _params(lint_gate="nope"))


def test_gate_verdict_survives_parameter_copy(loop_nest_clone):
    # stats ride along when results are rebuilt (exec store round trip)
    copied = dataclasses.replace(loop_nest_clone)
    assert copied.stats["lint"]["ok"] is True


def test_baseline_synthesizer_skips_conformance(loop_nest_profile):
    # The baseline deliberately breaks the synthesis contract (hash
    # branches, cache-sized footprint); only structural passes gate it.
    synthesizer = MicroarchDependentSynthesizer(
        loop_nest_profile, target_miss_rate=0.05,
        target_mispredict_rate=0.05, parameters=_params())
    assert synthesizer.lint_conformance is False
    result = synthesizer.synthesize()
    assert result.stats["lint"]["ok"] is True
