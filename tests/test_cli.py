"""Tests for the command-line interface."""

import json
import os

from repro.cli import (EXIT_BAD_TARGET, EXIT_LINT_FAILED, EXIT_LOAD_FAILED,
                       main)


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("qsort", "sha", "mpeg2dec"):
            assert name in out
        assert "automotive" in out


class TestProfile:
    def test_profile_workload_to_json(self, tmp_path, capsys):
        output = tmp_path / "p.json"
        assert main(["profile", "crc32", "-o", str(output)]) == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "instructions" in out

    def test_profile_assembly_file(self, tmp_path, capsys):
        source = tmp_path / "tiny.s"
        source.write_text("""
    .data
buf: .space 64
    .text
main:
    la r4, buf
    li r1, 0
    li r2, 50
loop:
    lw r3, 0(r4)
    addi r1, r1, 1
    blt r1, r2, loop
    halt
""")
        output = tmp_path / "tiny.json"
        assert main(["profile", str(source), "-o", str(output)]) == 0
        assert output.exists()

    def test_unknown_target_distinct_exit_code(self, capsys):
        assert main(["profile", "not-a-workload"]) == EXIT_BAD_TARGET

    def test_corrupt_profile_json_distinct_exit_code(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["estimate", str(bad)]) == EXIT_LOAD_FAILED

    def test_unparseable_assembly_distinct_exit_code(self, tmp_path):
        bad = tmp_path / "bad.s"
        bad.write_text("    .text\nmain:\n    frobnicate r1, r2\n")
        assert main(["profile", str(bad)]) == EXIT_LOAD_FAILED


class TestClone:
    def test_clone_from_workload(self, tmp_path, capsys):
        outdir = tmp_path / "out"
        assert main(["clone", "bitcount", "-o", str(outdir),
                     "--instructions", "30000"]) == 0
        files = os.listdir(outdir)
        assert any(name.endswith(".clone.s") for name in files)
        assert any(name.endswith(".clone.c") for name in files)

    def test_clone_from_json_profile(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        main(["profile", "bitcount", "-o", str(profile_path)])
        outdir = tmp_path / "out2"
        assert main(["clone", str(profile_path), "-o", str(outdir),
                     "--instructions", "30000"]) == 0
        assert os.listdir(outdir)

    def test_clone_artifacts_reassemble(self, tmp_path):
        from repro.isa import assemble
        outdir = tmp_path / "out3"
        main(["clone", "bitcount", "-o", str(outdir),
              "--instructions", "20000"])
        asm_file = [name for name in os.listdir(outdir)
                    if name.endswith(".s")][0]
        with open(outdir / asm_file) as handle:
            program = assemble(handle.read())
        assert len(program) > 50


class TestAnalysis:
    def test_compare(self, capsys):
        assert main(["compare", "bitcount",
                     "--instructions", "30000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "power" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "bitcount",
                     "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "statistical IPC estimate" in out


class TestObservability:
    def test_json_output_parses_and_carries_manifest(self, capsys):
        assert main(["compare", "bitcount",
                     "--instructions", "20000", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["command"] == "compare"
        assert data["rows"]
        manifest = data["manifest"]
        assert manifest["seed"] == 42
        assert manifest["config_hash"]
        assert manifest["phases"]  # per-phase wall times present
        assert manifest["headline"]["sim_mips_clone"] >= 0

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = [row["workload"] for row in data["workloads"]]
        assert "qsort" in names

    def test_report_on_fresh_run_dir(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["estimate", "bitcount", "--instructions", "20000",
                     "--run-dir", str(run_dir)]) == 0
        assert (run_dir / "manifest.json").exists()
        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "run: estimate bitcount" in out
        assert "phases:" in out
        assert "ipc_estimate" in out

    def test_report_missing_dir(self, tmp_path):
        assert main(["report", str(tmp_path / "nope")]) == EXIT_BAD_TARGET

    def test_report_corrupt_manifest(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "manifest.json").write_text('{"command": 7}')
        assert main(["report", str(run_dir)]) == EXIT_LOAD_FAILED

    def test_quiet_disables_telemetry(self, capsys):
        from repro.obs import TRACER, telemetry_enabled
        assert main(["estimate", "bitcount", "--instructions", "20000",
                     "--quiet"]) == 0
        assert not telemetry_enabled()
        assert TRACER.flat() == {}
        # Re-enable for the rest of the test session.
        from repro.obs import set_telemetry_enabled
        set_telemetry_enabled(True)

    def test_global_flag_position_before_subcommand(self, capsys):
        assert main(["--json", "estimate", "bitcount",
                     "--instructions", "20000"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "ipc_estimate" in data

class TestExecIntegration:
    def test_sweep_jobs_output_identical_to_serial(self, capsys):
        assert main(["sweep", "bitcount", "--instructions", "30000"]) == 0
        serial = capsys.readouterr().out
        assert main(["sweep", "bitcount", "--instructions", "30000",
                     "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_repro_jobs_env_matches_flag(self, capsys, monkeypatch):
        assert main(["compare", "bitcount", "--instructions", "20000",
                     "--json"]) == 0
        explicit = json.loads(capsys.readouterr().out)["rows"]
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert main(["compare", "bitcount", "--instructions", "20000",
                     "--json"]) == 0
        via_env = json.loads(capsys.readouterr().out)["rows"]
        assert via_env == explicit

    def test_json_carries_artifact_cache_provenance(self, capsys):
        args = ["compare", "bitcount", "--instructions", "20000", "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        cache = first["artifact_cache"]
        assert set(cache) >= {"root", "enabled", "hits", "misses", "writes"}
        assert "artifact_cache_hits" in first["manifest"]["headline"]
        # The second identical invocation must be served from the store.
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["artifact_cache"]["hits"] >= 1
        assert second["rows"] == first["rows"]


BROKEN_SOURCE = """
    .data
buf:    .word 0
    .text
main:
    add  r6, r5, r7
    la   r4, buf
    sw   r6, 640(r4)
    halt
"""


class TestLint:
    def test_lint_clean_workload(self, capsys):
        assert main(["lint", "crc32"]) == 0
        out = capsys.readouterr().out
        assert "lint PASS" in out

    def test_lint_broken_assembly_fails(self, tmp_path, capsys):
        source = tmp_path / "broken.s"
        source.write_text(BROKEN_SOURCE)
        assert main(["lint", str(source)]) == EXIT_LINT_FAILED
        out = capsys.readouterr().out
        assert "SR106" in out
        assert "lint FAIL" in out

    def test_lint_strict_promotes_warnings(self, tmp_path, capsys):
        source = tmp_path / "warny.s"
        source.write_text("""
    .text
main:
    add  r6, r5, r0
    halt
""")
        assert main(["lint", str(source)]) == 0
        assert main(["lint", "--strict", str(source)]) == EXIT_LINT_FAILED
        assert "SR104" in capsys.readouterr().out

    def test_lint_requires_a_target(self, capsys):
        assert main(["lint"]) == EXIT_BAD_TARGET

    def test_lint_unknown_target(self, capsys):
        assert main(["lint", "no-such-workload"]) == EXIT_BAD_TARGET

    def test_lint_clone_mode(self, capsys):
        assert main(["lint", "--clone", "crc32",
                     "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "lint PASS" in out

    def test_lint_json_payload(self, tmp_path, capsys):
        source = tmp_path / "broken.s"
        source.write_text(BROKEN_SOURCE)
        assert main(["lint", "--json", str(source)]) == EXIT_LINT_FAILED
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is False
        assert payload["summary"]["codes"].get("SR106") == 1
        codes = [diag["code"] for report in payload["reports"]
                 for diag in report["diagnostics"]]
        assert "SR106" in codes

    def test_lint_verdict_lands_in_manifest_and_report(self, tmp_path,
                                                       capsys):
        run_dir = tmp_path / "run"
        assert main(["lint", "crc32", "--run-dir", str(run_dir)]) == 0
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["lint"]["ok"] is True
        assert manifest["lint"]["programs"] == 1
        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "lint: PASS" in out

    def test_clone_gate_failure_exits_with_lint_code(self, tmp_path,
                                                     capsys):
        # A clone command on a workload succeeds (gate passes)...
        assert main(["clone", "crc32", "--instructions", "20000"]) == 0
        assert "lint:" in capsys.readouterr().out


FLEET_RECIPE = {
    "name": "cli-grid",
    "kernels": ["crc32"],
    "pipeline_cap": 20_000,
    "axes": {"width": [1, 2]},
}


class TestFleet:
    def write_recipe(self, tmp_path, payload=None):
        path = tmp_path / "recipe.json"
        path.write_text(json.dumps(payload or FLEET_RECIPE))
        return str(path)

    def test_expand_previews_cells(self, tmp_path, capsys):
        recipe = self.write_recipe(tmp_path)
        assert main(["fleet", "expand", recipe]) == 0
        out = capsys.readouterr().out
        assert out.count("crc32-s0-") == 2
        assert "width=1" in out and "width=2" in out

    def test_run_status_resume_cycle(self, tmp_path, capsys):
        recipe = self.write_recipe(tmp_path)
        run_dir = str(tmp_path / "run")
        assert main(["fleet", "run", recipe, "--dir", run_dir]) == 0
        out = capsys.readouterr().out
        assert "2/2 cells complete" in out
        assert os.path.exists(os.path.join(run_dir, "matrix.json"))

        assert main(["fleet", "status", run_dir]) == 0
        assert "matrix.json exported" in capsys.readouterr().out

        assert main(["fleet", "resume", run_dir]) == 0
        assert "2 resumed as done" in capsys.readouterr().out

    def test_run_json_payload(self, tmp_path, capsys):
        recipe = self.write_recipe(tmp_path)
        run_dir = str(tmp_path / "run")
        assert main(["fleet", "run", recipe, "--dir", run_dir,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet"]["complete"] is True
        assert payload["fleet"]["cells"] == 2

    def test_tail_follows_fleet_run_dir(self, tmp_path, capsys):
        recipe = self.write_recipe(tmp_path)
        run_dir = str(tmp_path / "run")
        main(["fleet", "run", recipe, "--dir", run_dir])
        capsys.readouterr()
        assert main(["tail", run_dir]) == 0
        assert "cells" in capsys.readouterr().out

    def test_incomplete_run_exits_nonzero_then_resumes(self, tmp_path,
                                                       capsys):
        recipe = self.write_recipe(tmp_path)
        run_dir = str(tmp_path / "run")
        code = main(["fleet", "run", recipe, "--dir", run_dir,
                     "--workers", "1", "--chaos-kill", "0:1"])
        assert code == 1
        assert "repro fleet resume" in capsys.readouterr().out
        assert main(["fleet", "resume", run_dir]) == 0
        assert "2/2 cells complete" in capsys.readouterr().out

    def test_missing_recipe_bad_target(self, tmp_path):
        assert main(["fleet", "run",
                     str(tmp_path / "nope.json")]) == EXIT_BAD_TARGET

    def test_invalid_recipe_load_failed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "kernels": ["crc32"],
                                   "axes": {"not_a_knob": [1]}}))
        assert main(["fleet", "run", str(bad)]) == EXIT_LOAD_FAILED

    def test_resume_missing_dir_bad_target(self, tmp_path):
        assert main(["fleet", "resume",
                     str(tmp_path / "absent")]) == EXIT_BAD_TARGET
