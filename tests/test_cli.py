"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("qsort", "sha", "mpeg2dec"):
            assert name in out
        assert "automotive" in out


class TestProfile:
    def test_profile_workload_to_json(self, tmp_path, capsys):
        output = tmp_path / "p.json"
        assert main(["profile", "crc32", "-o", str(output)]) == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "instructions" in out

    def test_profile_assembly_file(self, tmp_path, capsys):
        source = tmp_path / "tiny.s"
        source.write_text("""
    .data
buf: .space 64
    .text
main:
    la r4, buf
    li r1, 0
    li r2, 50
loop:
    lw r3, 0(r4)
    addi r1, r1, 1
    blt r1, r2, loop
    halt
""")
        output = tmp_path / "tiny.json"
        assert main(["profile", str(source), "-o", str(output)]) == 0
        assert output.exists()

    def test_unknown_target_errors(self):
        with pytest.raises(SystemExit):
            main(["profile", "not-a-workload"])


class TestClone:
    def test_clone_from_workload(self, tmp_path, capsys):
        outdir = tmp_path / "out"
        assert main(["clone", "bitcount", "-o", str(outdir),
                     "--instructions", "30000"]) == 0
        files = os.listdir(outdir)
        assert any(name.endswith(".clone.s") for name in files)
        assert any(name.endswith(".clone.c") for name in files)

    def test_clone_from_json_profile(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        main(["profile", "bitcount", "-o", str(profile_path)])
        outdir = tmp_path / "out2"
        assert main(["clone", str(profile_path), "-o", str(outdir),
                     "--instructions", "30000"]) == 0
        assert os.listdir(outdir)

    def test_clone_artifacts_reassemble(self, tmp_path):
        from repro.isa import assemble
        outdir = tmp_path / "out3"
        main(["clone", "bitcount", "-o", str(outdir),
              "--instructions", "20000"])
        asm_file = [name for name in os.listdir(outdir)
                    if name.endswith(".s")][0]
        with open(outdir / asm_file) as handle:
            program = assemble(handle.read())
        assert len(program) > 50


class TestAnalysis:
    def test_compare(self, capsys):
        assert main(["compare", "bitcount",
                     "--instructions", "30000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "power" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "bitcount",
                     "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "statistical IPC estimate" in out
