"""Abstract-interpretation safety proofs (SR110-SR114) and certificates.

Every proof here is checked two ways: the claimed diagnostic/certificate
content, and — where a dynamic trace exists — *soundness*: a proven
bound must contain the observed behaviour, and anything unprovable must
be reported as unbounded, never guessed.
"""

import numpy as np
import pytest

from repro.isa import assemble
from repro.lint import (
    CERTIFICATE_SCHEMA_VERSION,
    analyze_program,
    check_safety,
    lint_program,
    safety_certificate,
)
from repro.sim import run_program


def codes_of(report):
    return [diag.code for diag in report.diagnostics]


# ----------------------------------------------------------------------
# Trip-count bounds (SR110/SR111)
# ----------------------------------------------------------------------
class TestTripBounds:
    def test_counted_loop_exact_bound(self, sum_program):
        result = analyze_program(sum_program)
        assert len(result.loops) == 1
        loop = result.loops[0]
        assert loop.trip_bound == 8
        assert loop.exact
        report = check_safety(sum_program)
        codes = codes_of(report)
        assert "SR110" in codes
        assert "SR111" not in codes

    def test_nested_loops_both_bounded(self, loop_nest_program):
        result = analyze_program(loop_nest_program)
        bounds = sorted(loop.trip_bound for loop in result.loops)
        assert bounds == [40, 64]
        assert all(loop.exact for loop in result.loops)

    def test_data_dependent_loop_reports_unbounded(self):
        # The exit depends on loaded data: no bound is provable, and
        # claiming one would be unsound.
        program = assemble("""
    .data
vals:   .word 5, 3, 0, 9
    .text
main:
    la   r4, vals
loop:
    lw   r5, 0(r4)
    addi r4, r4, 4
    bne  r5, r0, loop
    halt
""", name="data-dep")
        result = analyze_program(program)
        assert result.loops[0].trip_bound is None
        assert not result.terminates
        report = check_safety(program)
        assert "SR111" in codes_of(report)
        assert "SR110" not in codes_of(report)
        assert "SR112" not in codes_of(report)

    def test_countdown_trip_bound_is_sound(self, sum_program):
        trace = run_program(sum_program)
        result = analyze_program(sum_program)
        # The loop body executes at most trip_bound times: count the
        # header block's dynamic visits.
        loop = result.loops[0]
        header_start = result.cfg.blocks[loop.header].start
        visits = int(np.count_nonzero(trace.pcs == header_start))
        assert visits <= loop.trip_bound
        assert visits == loop.trip_bound  # exact proof

    def test_decrementing_loop(self):
        program = assemble("""
    .text
main:
    li   r5, 12
loop:
    addi r5, r5, -1
    blt  r0, r5, loop
    halt
""", name="countdown")
        result = analyze_program(program)
        assert result.loops[0].trip_bound == 12

    def test_bne_latch_without_reset_declines(self):
        # ``bne``'s exit-on-fallthrough has no closed-form trip
        # expression outside the verified countdown pattern, so the
        # analysis must decline rather than guess.
        program = assemble("""
    .text
main:
    li   r5, 12
loop:
    addi r5, r5, -1
    bne  r5, r0, loop
    halt
""", name="bne-latch")
        result = analyze_program(program)
        assert result.loops[0].trip_bound is None


# ----------------------------------------------------------------------
# Termination + instruction bound (SR112)
# ----------------------------------------------------------------------
class TestTermination:
    def test_instruction_bound_contains_observed_length(
            self, loop_nest_program):
        result = analyze_program(loop_nest_program)
        assert result.terminates
        trace = run_program(loop_nest_program)
        assert len(trace) <= result.instruction_bound

    def test_block_bounds_contain_observed_visits(self, loop_nest_program):
        result = analyze_program(loop_nest_program)
        trace = run_program(loop_nest_program)
        for bid, bound in result.block_bounds.items():
            start = result.cfg.blocks[bid].start
            visits = int(np.count_nonzero(trace.pcs == start))
            assert visits <= bound, f"block {bid}: {visits} > {bound}"

    def test_indirect_jump_declines_all_proofs(self):
        program = assemble("""
    .text
main:
    li   r5, 4
    jr   r5
""", name="indirect")
        result = analyze_program(program)
        assert result.degraded
        assert not result.terminates
        assert result.footprint is None
        report = check_safety(program)
        assert "SR111" in codes_of(report)
        assert "SR112" not in codes_of(report)


# ----------------------------------------------------------------------
# Footprint interval (SR113/SR114)
# ----------------------------------------------------------------------
class TestFootprint:
    def test_footprint_contains_every_observed_address(self):
        program = assemble("""
    .data
buf:    .word 1, 2, 3, 4
    .text
main:
    la   r4, buf
    li   r5, 0
    li   r6, 10
loop:
    lw   r7, 0(r4)
    sw   r7, 8(r4)
    addi r5, r5, 1
    blt  r5, r6, loop
    halt
""", name="fixed-access")
        result = analyze_program(program)
        assert result.footprint is not None
        lo, hi = result.footprint
        trace = run_program(program)
        addrs = trace.memory_addresses()
        assert int(addrs.min()) >= lo
        assert int(addrs.max()) < hi

    def test_walking_pointer_in_plain_loop_degrades(self, sum_program):
        # A hand-written walk has no countdown reset to prove against:
        # the footprint must degrade to SR114, never to a wrong bound.
        result = analyze_program(sum_program)
        assert result.footprint is None
        assert result.unbounded_memops

    def test_unbounded_pointer_reports_sr114_not_a_guess(self):
        # The walking pointer's extent depends on a data-dependent trip
        # count; the analysis must decline, not invent an interval.
        program = assemble("""
    .data
buf:    .word 1, 2, 3, 0
    .text
main:
    la   r4, buf
loop:
    lw   r5, 0(r4)
    addi r4, r4, 4
    bne  r5, r0, loop
    halt
""", name="unbounded-walk")
        result = analyze_program(program)
        assert result.footprint is None
        assert result.unbounded_memops
        report = check_safety(program)
        assert "SR114" in codes_of(report)
        assert "SR113" not in codes_of(report)

    def test_no_memory_ops_is_an_empty_footprint(self):
        program = assemble("""
    .text
main:
    li   r5, 4
loop:
    addi r5, r5, -1
    bne  r5, r0, loop
    halt
""", name="pure-compute")
        result = analyze_program(program)
        assert result.footprint == (0, 0)


# ----------------------------------------------------------------------
# The countdown (modulo-counter) domain on real synthesizer output
# ----------------------------------------------------------------------
class TestCountdownDomain:
    def test_clone_countdowns_verified(self, loop_nest_clone):
        result = analyze_program(loop_nest_clone.program)
        assert len(result.loops) == 1
        loop = result.loops[0]
        assert loop.countdowns, "no countdown walk recognized"
        for info in loop.countdowns:
            assert info.period >= 1
            assert info.base >= loop_nest_clone.program.data_base

    def test_clone_proofs_sound_against_trace(self, loop_nest_clone,
                                              loop_nest_clone_trace):
        result = analyze_program(loop_nest_clone.program)
        assert result.terminates
        assert len(loop_nest_clone_trace) <= result.instruction_bound
        lo, hi = result.footprint
        addrs = loop_nest_clone_trace.memory_addresses()
        assert int(addrs.min()) >= lo
        assert int(addrs.max()) < hi


# ----------------------------------------------------------------------
# Certificates and the lint_program entry point
# ----------------------------------------------------------------------
class TestCertificate:
    def test_certificate_shape(self, loop_nest_clone):
        cert = safety_certificate(loop_nest_clone.program)
        assert cert["schema"] == CERTIFICATE_SCHEMA_VERSION
        assert cert["terminates"] is True
        assert cert["instruction_bound"] > 0
        assert cert["footprint"]["bytes"] == (
            cert["footprint"]["hi"] - cert["footprint"]["lo"])
        assert cert["unbounded_memops"] == 0
        assert cert["degraded"] is None
        assert all("trip_bound" in loop for loop in cert["loops"])

    def test_synthesizer_attaches_certificate(self, loop_nest_clone):
        cert = loop_nest_clone.stats["certificate"]
        assert cert["terminates"] is True
        assert cert == safety_certificate(loop_nest_clone.program)

    def test_lint_program_safety_flag(self, sum_program):
        plain = lint_program(sum_program)
        assert not any(code.startswith("SR11")
                       for code in plain.codes())
        with_safety = lint_program(sum_program, safety=True)
        assert "SR110" in with_safety.codes()
        assert "SR112" in with_safety.codes()
        # sum8 walks a pointer without countdown machinery, so the
        # footprint soundly degrades to "unbounded".
        assert "SR114" in with_safety.codes()

    def test_severity_overrides_reach_safety_codes(self):
        program = assemble("""
    .data
vals:   .word 1, 0
    .text
main:
    la   r4, vals
loop:
    lw   r5, 0(r4)
    addi r4, r4, 4
    bne  r5, r0, loop
    halt
""", name="override-me")
        default = lint_program(program, safety=True)
        assert default.ok  # SR111/SR114 are warnings
        strict = lint_program(program, safety=True,
                              severity_overrides={"SR111": "error"})
        assert not strict.ok


# ----------------------------------------------------------------------
# Analysis caching
# ----------------------------------------------------------------------
def test_analysis_is_cached_per_program(sum_program):
    first = analyze_program(sum_program)
    assert analyze_program(sum_program) is first
