"""Span tracing: identity, tree reconstruction, exporters."""

import json
import os
import time

import pytest

from repro.obs.journal import configure_journal, read_journal
from repro.obs.timing import TRACER
from repro.obs.trace import (
    TRACE_PARENT_ENV,
    begin_span,
    build_span_tree,
    critical_path,
    critical_path_text,
    current_span_id,
    end_span,
    export_chrome_trace,
    flame_summary,
    flame_text,
    reset_trace_state,
    span_coverage,
    timeline_text,
)


@pytest.fixture(autouse=True)
def _clean_trace_state(monkeypatch):
    monkeypatch.delenv(TRACE_PARENT_ENV, raising=False)
    reset_trace_state()
    yield
    configure_journal(None)
    reset_trace_state()


@pytest.fixture
def journal(tmp_path):
    run_dir = str(tmp_path / "run")
    configure_journal(run_dir)
    yield run_dir
    configure_journal(None)


def _span_events(run_dir):
    return read_journal(run_dir).events


class TestSpanWriting:
    def test_zero_cost_without_journal(self):
        assert begin_span("anything") is None
        end_span(None, 1.0)  # must not raise

    def test_open_close_pair_journaled(self, journal):
        handle = begin_span("work", {"k": 1})
        end_span(handle, 0.25, cpu_s=0.2)
        events = _span_events(journal)
        assert [event["kind"] for event in events] \
            == ["span_open", "span_close"]
        assert events[0]["name"] == "work"
        assert events[0]["attrs"] == {"k": 1}
        assert events[1]["span"] == events[0]["span"]
        assert events[1]["wall_s"] == 0.25
        assert events[1]["cpu_s"] == 0.2

    def test_nested_spans_record_parent(self, journal):
        outer = begin_span("outer")
        inner = begin_span("inner")
        assert current_span_id() == inner[0]
        end_span(inner, 0.1)
        assert current_span_id() == outer[0]
        end_span(outer, 0.2)
        opens = [event for event in _span_events(journal)
                 if event["kind"] == "span_open"]
        assert opens[0]["parent"] is None
        assert opens[1]["parent"] == opens[0]["span"]

    def test_env_parent_adopts_worker_roots(self, journal, monkeypatch):
        monkeypatch.setenv(TRACE_PARENT_ENV, "1234-1")
        handle = begin_span("worker.task")
        end_span(handle, 0.1)
        opens = [event for event in _span_events(journal)
                 if event["kind"] == "span_open"]
        assert opens[0]["parent"] == "1234-1"

    def test_unbalanced_close_recovers(self, journal):
        outer = begin_span("outer")
        inner = begin_span("inner")
        end_span(outer, 0.2)  # exception path closed out of order
        assert current_span_id() == inner[0]
        end_span(inner, 0.1)
        assert current_span_id() is None

    def test_tracer_span_is_traced(self, journal):
        with TRACER.span("phase"), TRACER.span("step"):
            pass
        names = [event["name"] for event in _span_events(journal)
                 if event["kind"] == "span_open"]
        assert names == ["phase", "step"]


def _mk(ts, pid, seq, kind, **fields):
    return {"ts": ts, "pid": pid, "seq": seq, "kind": kind, **fields}


def _forest():
    """Root (1s) -> [child-a (0.4s), child-b on another pid (0.5s)]."""
    return [
        _mk(10.0, 1, 1, "span_open", span="1-1", parent=None, name="root"),
        _mk(10.1, 1, 2, "span_open", span="1-2", parent="1-1", name="a"),
        _mk(10.5, 1, 3, "span_close", span="1-2", parent="1-1", name="a",
            wall_s=0.4),
        _mk(10.4, 2, 1, "span_open", span="2-1", parent="1-1", name="b"),
        _mk(10.9, 2, 2, "span_close", span="2-1", parent="1-1", name="b",
            wall_s=0.5, cpu_s=0.45),
        _mk(11.0, 1, 4, "span_close", span="1-1", parent=None, name="root",
            wall_s=1.0),
    ]


class TestTreeReconstruction:
    def test_well_formed_forest(self):
        roots = build_span_tree(_forest())
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root"
        assert sorted(child.name for child in root.children) == ["a", "b"]
        assert root.complete
        assert root.wall_s == 1.0
        assert {node.pid for node in root.walk()} == {1, 2}

    def test_every_span_within_parent_extent(self):
        for root in build_span_tree(_forest()):
            for node in root.walk():
                for child in node.children:
                    assert child.start >= node.start - 1e-6
                    assert child.end <= node.end + 1e-6

    def test_unclosed_span_kept_as_incomplete(self):
        events = _forest()[:2]  # root + child opened, nothing closed
        roots = build_span_tree(events, now=12.0)
        root = roots[0]
        assert not root.complete
        assert root.end == 12.0
        assert root.wall_s == 2.0
        assert not root.children[0].complete

    def test_close_without_open_becomes_node(self):
        events = [_mk(10.0, 1, 1, "span_close", span="1-9", parent=None,
                      name="orphan", wall_s=0.5)]
        roots = build_span_tree(events)
        assert roots[0].name == "orphan"
        assert roots[0].start == 9.5

    def test_coverage_of_root_against_wall(self):
        roots = build_span_tree(_forest())
        assert span_coverage(roots, 1.0) == 1.0
        assert span_coverage(roots, 2.0) == 0.5
        assert span_coverage([], 1.0) == 0.0


class TestViews:
    def test_flame_summary_self_vs_total(self):
        rows = {row["path"]: row
                for row in flame_summary(build_span_tree(_forest()))}
        assert rows["root"]["total_s"] == 1.0
        assert abs(rows["root"]["self_s"] - 0.1) < 1e-9  # 1.0 - 0.4 - 0.5
        assert rows["root/b"]["cpu_s"] == 0.45

    def test_text_views_render(self):
        roots = build_span_tree(_forest())
        flame = flame_text(roots)
        assert "root/a" in flame and "share" in flame
        critical = critical_path_text(roots)
        assert critical.splitlines()[1].strip().startswith("root")
        timeline = timeline_text(roots)
        assert "pid 1:" in timeline and "pid 2:" in timeline

    def test_critical_path_descends_latest_child(self):
        chain = critical_path(build_span_tree(_forest()))
        assert [node.name for _, node in chain] == ["root", "b"]
        assert [depth for depth, _ in chain] == [0, 1]

    def test_empty_views_do_not_crash(self):
        assert "no spans" in flame_text([])
        assert "no spans" in critical_path_text([])
        assert "no spans" in timeline_text([])


class TestChromeExport:
    def test_export_loads_as_trace_event_json(self, tmp_path):
        events = _forest() + [
            _mk(10.2, 1, 9, "store", event="hit", key="abc"),
            _mk(10.3, 1, 10, "progress", done=1, total=9, unit="configs"),
        ]
        out = tmp_path / "trace.json"
        count = export_chrome_trace(events, str(out))
        payload = json.loads(out.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert len(payload["traceEvents"]) == count == 5
        complete = [entry for entry in payload["traceEvents"]
                    if entry["ph"] == "X"]
        instants = [entry for entry in payload["traceEvents"]
                    if entry["ph"] == "i"]
        assert len(complete) == 3 and len(instants) == 2
        for entry in complete:
            assert entry["ts"] >= 0.0  # relative microseconds
            assert entry["dur"] > 0.0
            assert {"name", "pid", "tid", "args"} <= set(entry)
        root = next(e for e in complete if e["name"] == "root")
        assert root["dur"] == 1e6

    def test_live_spans_round_trip_through_export(self, journal, tmp_path):
        with TRACER.span("outer"):
            time.sleep(0.01)
            with TRACER.span("inner"):
                time.sleep(0.01)
        out = tmp_path / "trace.json"
        count = export_chrome_trace(read_journal(journal).events, str(out))
        assert count == 2
        names = {entry["name"]
                 for entry in json.loads(out.read_text())["traceEvents"]}
        assert names == {"outer", "inner"}


class TestForkSafety:
    def test_span_ids_unique_across_fork(self, journal):
        if not hasattr(os, "fork"):
            pytest.skip("no fork on this platform")
        parent_handle = begin_span("parent")
        pid = os.fork()
        if pid == 0:  # child
            try:
                handle = begin_span("child")
                end_span(handle, 0.01)
                os._exit(0)
            except BaseException:
                os._exit(1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        end_span(parent_handle, 0.02)
        configure_journal(None)
        opens = [event for event in read_journal(journal).events
                 if event["kind"] == "span_open"]
        sids = [event["span"] for event in opens]
        assert len(sids) == len(set(sids)) == 2
        child_open = next(event for event in opens
                          if event["name"] == "child")
        assert child_open["parent"] == parent_handle[0]
