"""Shared fixtures: small hand-written programs exercising every layer."""

import os

import pytest

from repro.isa import assemble
from repro.sim import run_program


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the persistent artifact store at a per-session temp dir.

    Keeps tests hermetic: no reads of (or writes to) the developer's
    ``~/.cache/repro``, while still exercising the real disk-cache
    paths within the session.
    """
    from repro.exec import reset_default_store
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    reset_default_store()
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    reset_default_store()

#: A small two-level loop nest with loads, stores, a multiply, and both a
#: biased and a data-ish branch — rich enough to profile and clone.
LOOP_NEST_SOURCE = """
    .data
arr:    .word 0
    .space 8192
    .text
main:
    li   r4, 0
    li   r5, 40
    la   r6, arr
outer:
    li   r7, 0
    li   r8, 64
inner:
    slli r9, r7, 2
    add  r10, r6, r9
    lw   r11, 0(r10)
    addi r11, r11, 3
    mul  r12, r11, r8
    andi r13, r12, 1
    beq  r13, r0, skip
    addi r11, r11, 1
skip:
    sw   r11, 0(r10)
    addi r7, r7, 1
    blt  r7, r8, inner
    addi r4, r4, 1
    blt  r4, r5, outer
    halt
"""

SUM_SOURCE = """
    .data
vals:   .word 5, 3, 8, 1, 9, 2, 7, 4
result: .word 0
    .text
main:
    la   r4, vals
    li   r5, 0
    li   r6, 0
    li   r7, 8
loop:
    lw   r8, 0(r4)
    add  r5, r5, r8
    addi r4, r4, 4
    addi r6, r6, 1
    blt  r6, r7, loop
    la   r9, result
    sw   r5, 0(r9)
    halt
"""


@pytest.fixture(scope="session")
def loop_nest_program():
    return assemble(LOOP_NEST_SOURCE, name="loop_nest")


@pytest.fixture(scope="session")
def loop_nest_trace(loop_nest_program):
    return run_program(loop_nest_program)


@pytest.fixture(scope="session")
def loop_nest_profile(loop_nest_trace):
    from repro.core import profile_trace
    return profile_trace(loop_nest_trace)


@pytest.fixture(scope="session")
def loop_nest_clone(loop_nest_profile):
    from repro.core import make_clone
    from repro.core.synthesizer import SynthesisParameters
    return make_clone(loop_nest_profile,
                      SynthesisParameters(dynamic_instructions=30_000))


@pytest.fixture(scope="session")
def loop_nest_clone_trace(loop_nest_clone):
    return run_program(loop_nest_clone.program, max_instructions=2_000_000)


@pytest.fixture
def sum_program():
    return assemble(SUM_SOURCE, name="sum8")
