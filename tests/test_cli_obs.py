"""CLI observability: journaled runs, trace/tail views, degradation."""

import json
import os

import pytest

from repro.cli import EXIT_BAD_TARGET, EXIT_LOAD_FAILED, main
from repro.obs.journal import (JOURNAL_DIR_ENV, configure_journal,
                               read_journal)
from repro.obs.trace import (build_span_tree, reset_trace_state,
                             span_coverage)


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    monkeypatch.delenv(JOURNAL_DIR_ENV, raising=False)
    monkeypatch.delenv("REPRO_TRACE_PARENT", raising=False)
    reset_trace_state()
    yield
    configure_journal(None)
    reset_trace_state()


@pytest.fixture(scope="module")
def journaled_run(tmp_path_factory):
    """One parallel compare run with a journal, shared across tests."""
    run_dir = tmp_path_factory.mktemp("obs") / "run"
    code = main(["compare", "crc32", "--instructions", "20000",
                 "--jobs", "2", "--run-dir", str(run_dir)])
    assert code == 0
    configure_journal(None)
    reset_trace_state()
    return run_dir


class TestJournaledRun:
    def test_run_dir_grows_journal_files(self, journaled_run):
        names = sorted(os.listdir(journaled_run))
        assert "manifest.json" in names
        assert any(name.startswith("journal-") for name in names)

    def test_journal_has_run_envelope_and_spans(self, journaled_run):
        merged = read_journal(str(journaled_run))
        assert merged.skipped == 0
        begin, end = merged.run_info()
        assert begin["command"] == "compare"
        assert end["exit_code"] == 0
        kinds = {event["kind"] for event in merged.events}
        assert {"span_open", "span_close", "tasks", "task_done"} <= kinds

    def test_span_tree_covers_at_least_95_percent_of_wall(
            self, journaled_run):
        merged = read_journal(str(journaled_run))
        _, end = merged.run_info()
        roots = build_span_tree(merged.events)
        assert span_coverage(roots, end["wall_seconds"]) >= 0.95

    def test_worker_spans_attach_under_cli_root(self, journaled_run):
        merged = read_journal(str(journaled_run))
        roots = build_span_tree(merged.events)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "cli.compare"
        pids = {node.pid for node in root.walk()}
        assert len(pids) >= 2  # main process + at least one pool worker
        names = {node.name for node in root.walk()}
        assert "exec.task" in names

    def test_quiet_suppresses_journaling(self, tmp_path, capsys):
        run_dir = tmp_path / "quiet-run"
        assert main(["profile", "crc32", "-o",
                     str(tmp_path / "p.json"), "--run-dir", str(run_dir),
                     "--quiet"]) == 0
        assert not any(name.startswith("journal-")
                       for name in os.listdir(run_dir))


class TestTraceCommand:
    def test_renders_all_views(self, journaled_run, capsys):
        assert main(["trace", str(journaled_run)]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "critical path" in out
        assert "span path" in out  # flame table header
        assert "cli.compare" in out

    def test_single_view_selection(self, journaled_run, capsys):
        assert main(["trace", str(journaled_run), "--view", "flame"]) == 0
        out = capsys.readouterr().out
        assert "span path" in out
        assert "critical path" not in out

    def test_chrome_export_writes_loadable_json(self, journaled_run,
                                                tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert main(["trace", str(journaled_run),
                     "--chrome", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]
        phases = {entry["ph"] for entry in payload["traceEvents"]}
        assert "X" in phases

    def test_missing_run_dir_distinct_exit(self, tmp_path):
        assert main(["trace", str(tmp_path / "nope")]) == EXIT_BAD_TARGET

    def test_empty_run_dir_distinct_exit(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["trace", str(empty)]) == EXIT_LOAD_FAILED

    def test_json_mode_emits_summary(self, journaled_run, capsys):
        assert main(["--json", "trace", str(journaled_run)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "trace"
        assert payload["events"] > 0
        assert payload["pids"]


class TestTailCommand:
    def test_one_shot_snapshot_of_finished_run(self, journaled_run,
                                               capsys):
        assert main(["tail", str(journaled_run)]) == 0
        out = capsys.readouterr().out
        assert "finished" in out
        assert "tasks: 2/2" in out

    def test_tail_of_running_run_shows_open_spans(self, tmp_path, capsys):
        run_dir = str(tmp_path / "live")
        configure_journal(run_dir)
        from repro.obs.journal import emit_event
        from repro.obs.trace import begin_span
        emit_event("run_begin", command="compare", target="crc32")
        begin_span("cli.compare")
        emit_event("progress", done=3, total=9, unit="configs",
                   label="base")
        configure_journal(None)
        reset_trace_state()
        assert main(["tail", run_dir]) == 0
        out = capsys.readouterr().out
        assert "running" in out
        assert "cli.compare" in out
        assert "3/9" in out

    def test_missing_run_dir_distinct_exit(self, tmp_path):
        assert main(["tail", str(tmp_path / "nope")]) == EXIT_BAD_TARGET


class TestReportDegradation:
    def test_corrupt_manifest_without_journal_still_fails(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "manifest.json").write_text('{"command": 7}')
        assert main(["report", str(run_dir)]) == EXIT_LOAD_FAILED

    def test_corrupt_manifest_with_journal_degrades(self, journaled_run,
                                                    capsys):
        manifest = journaled_run / "manifest.json"
        saved = manifest.read_text()
        try:
            manifest.write_text("{truncated")
            assert main(["report", str(journaled_run)]) == 0
            out = capsys.readouterr().out
            assert "degraded" in out or "journal" in out
        finally:
            manifest.write_text(saved)

    def test_partial_manifest_fields_salvaged(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        configure_journal(str(run_dir))
        from repro.obs.journal import emit_event
        emit_event("run_begin", command="compare")
        emit_event("run_end", exit_code=0, wall_seconds=0.5)
        configure_journal(None)
        (run_dir / "manifest.json").write_text(
            '{"command": "compare", "target": 42}')
        assert main(["report", str(run_dir)]) == 0

    def test_report_timeline_renders_journal_views(self, journaled_run,
                                                   capsys):
        assert main(["report", str(journaled_run), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "span path" in out


class TestSelfProfileFlag:
    def test_profile_block_lands_in_manifest(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["compare", "crc32", "--instructions", "60000",
                     "--profile", "--run-dir", str(run_dir)]) == 0
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["schema_version"] >= 3
        profile = manifest["profile"]
        assert profile is not None
        assert "samples" in profile and "top" in profile
        out = capsys.readouterr().out
        assert "profile:" in out

    def test_profile_absent_by_default(self, journaled_run):
        manifest = json.loads(
            (journaled_run / "manifest.json").read_text())
        assert manifest.get("profile") is None
