"""Unit tests for branch-direction predictors."""

import pytest

from repro.uarch import (
    AlwaysNotTaken,
    AlwaysTaken,
    Bimodal,
    GShare,
    TwoLevelGAp,
    make_predictor,
    simulate_predictor,
)
from repro.sim import run_program


class TestStatics:
    def test_not_taken(self):
        predictor = AlwaysNotTaken()
        assert predictor.predict(0x40) is False
        predictor.update(0x40, True)
        predictor.update(0x40, False)
        assert predictor.stats.lookups == 2
        assert predictor.stats.mispredictions == 1

    def test_taken(self):
        predictor = AlwaysTaken()
        predictor.update(0, True)
        assert predictor.stats.mispredictions == 0

    def test_empty_rate(self):
        assert AlwaysTaken().stats.misprediction_rate == 0.0


class TestBimodal:
    def test_learns_bias(self):
        predictor = Bimodal(entries=16)
        for _ in range(10):
            predictor.update(5, True)
        assert predictor.predict(5) is True

    def test_hysteresis(self):
        predictor = Bimodal(entries=16)
        for _ in range(10):
            predictor.update(5, True)
        predictor.update(5, False)  # one blip should not flip it
        assert predictor.predict(5) is True

    def test_counters_saturate(self):
        predictor = Bimodal(entries=16)
        for _ in range(100):
            predictor.update(1, True)
        assert max(predictor.counters) <= 3
        for _ in range(100):
            predictor.update(1, False)
        assert min(predictor.counters) >= 0

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            Bimodal(entries=12)

    def test_aliasing_by_index(self):
        predictor = Bimodal(entries=4)
        for _ in range(4):
            predictor.update(0, True)
        # pc 4 aliases pc 0 in a 4-entry table.
        assert predictor.predict(4) is True


class TestTwoLevel:
    def test_gap_learns_alternating_pattern(self):
        predictor = TwoLevelGAp(history_bits=8)
        mispredictions = 0
        for i in range(400):
            taken = bool(i % 2)
            if predictor.predict(7) != taken:
                mispredictions += 1
            predictor.update(7, taken)
        # After warmup the period-2 pattern is perfectly predicted.
        assert mispredictions < 20

    def test_gap_learns_short_periodic_pattern(self):
        predictor = TwoLevelGAp(history_bits=8)
        pattern = [True, True, True, False]
        for i in range(800):
            predictor.update(3, pattern[i % 4])
        tail_misses = predictor.stats.mispredictions
        for i in range(800, 1000):
            predictor.update(3, pattern[i % 4])
        tail_misses = predictor.stats.mispredictions - tail_misses
        assert tail_misses < 10

    def test_gshare_learns_bias(self):
        predictor = GShare(history_bits=8)
        for _ in range(200):
            predictor.update(9, True)
        assert predictor.predict(9) is True

    def test_history_register_bounded(self):
        predictor = TwoLevelGAp(history_bits=4)
        for i in range(100):
            predictor.update(1, bool(i % 3))
        assert 0 <= predictor.history < 16


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("nottaken", AlwaysNotTaken), ("taken", AlwaysTaken),
        ("bimodal", Bimodal), ("gap", TwoLevelGAp), ("gshare", GShare),
    ])
    def test_make(self, kind, cls):
        assert isinstance(make_predictor(kind), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_predictor("oracle")


class TestTraceSimulation:
    def test_loop_branches_are_predictable(self, loop_nest_program):
        trace = run_program(loop_nest_program)
        predictor = simulate_predictor(trace, "gap")
        assert predictor.stats.lookups == trace.summary()["branches"]
        # Loop back-edges plus a parity branch: a 2-level predictor does
        # well but the parity branch depends on data.
        assert predictor.stats.misprediction_rate < 0.25

    def test_nottaken_rate_equals_taken_rate(self, loop_nest_program):
        trace = run_program(loop_nest_program)
        predictor = simulate_predictor(trace, "nottaken")
        summary = trace.summary()
        expected = summary["taken_branches"] / summary["branches"]
        assert predictor.stats.misprediction_rate == pytest.approx(expected)
