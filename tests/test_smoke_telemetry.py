"""Tier-1 telemetry smoke test.

Runs a real end-to-end ``repro compare <small-workload> --instructions
20000 --json`` and validates the emitted manifest against the schema, so
a regression anywhere in the telemetry path (spans not recorded, metrics
missing, manifest shape drift) fails the ordinary test run.
"""

import json

from repro.cli import main
from repro.obs import validate_manifest


def test_compare_json_manifest_validates(capsys, monkeypatch):
    # Force a cold pipeline: a warm artifact-cache hit would (correctly)
    # skip the profile/synthesize/sim phases this test asserts on.
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert main(["compare", "crc32", "--instructions", "20000",
                 "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    manifest = data["manifest"]

    assert validate_manifest(manifest) == []

    # The acceptance-criteria fields: seed, config hash, per-phase wall
    # times, and simulation throughput.
    assert manifest["seed"] == 42
    assert isinstance(manifest["config_hash"], str) and manifest["config_hash"]
    for phase in ("profile/sfg_build", "profile/stride_mining",
                  "synthesize/codegen", "sim.run", "uarch.sweep",
                  "uarch.sweep/uarch.pipeline"):
        assert manifest["phases"][phase]["wall_s"] >= 0.0
    assert manifest["metrics"]["sim.mips"]["value"] > 0.0
    assert manifest["metrics"]["pipeline.sim_mips"]["value"] > 0.0
    assert manifest["headline"]["sim_mips_real"] > 0.0
    assert manifest["wall_seconds"] > 0.0
