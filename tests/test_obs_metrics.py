"""Metrics registry semantics: instruments, disabled mode, snapshots."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert counter.snapshot() == {"type": "counter", "value": 42}

    def test_gauge_keeps_last_value(self):
        gauge = Gauge("g")
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5

    def test_histogram_bucket_boundaries(self):
        hist = Histogram("h", bounds=(10, 20, 30))
        for value in (5, 10, 11, 30, 31, 1000):
            hist.observe(value)
        # Bounds are inclusive uppers; the 4th bucket is overflow.
        assert hist.bucket_counts == [2, 1, 1, 2]
        assert hist.count == 6
        assert hist.min == 5 and hist.max == 1000
        assert hist.mean == pytest.approx(sum((5, 10, 11, 30, 31, 1000)) / 6)

    def test_histogram_snapshot_shape(self):
        hist = Histogram("h")
        hist.observe(3)
        snap = hist.snapshot()
        assert snap["type"] == "histogram"
        assert snap["bounds"] == list(DEFAULT_BUCKETS)
        assert len(snap["bucket_counts"]) == len(DEFAULT_BUCKETS) + 1

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(5, 2))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(0.5)
        snap = registry.snapshot()
        assert snap["a"] == {"type": "counter", "value": 3}
        assert snap["b"] == {"type": "gauge", "value": 0.5}

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot() == {}
        assert registry.get("a") is None


class TestDisabledMode:
    def test_disabled_registry_hands_out_null_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a")
        gauge = registry.gauge("b")
        hist = registry.histogram("c")
        assert counter is NULL_INSTRUMENT
        assert gauge is NULL_INSTRUMENT and hist is NULL_INSTRUMENT
        counter.inc(100)
        gauge.set(9.9)
        hist.observe(7)
        assert registry.snapshot() == {}

    def test_enable_toggle(self):
        registry = MetricsRegistry(enabled=False)
        assert not registry.enabled
        registry.enable()
        registry.counter("a").inc()
        assert registry.snapshot()["a"]["value"] == 1
        registry.disable()
        registry.counter("later").inc(5)  # no-op while disabled
        assert "later" not in registry.snapshot()
