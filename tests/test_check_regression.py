"""Benchmark regression guard: ratio comparison and exit codes."""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks",
                 "check_regression.py"))
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _sweep_payload(cold, store=2.5, warm=2.6):
    rows = [[name, 540000, 0.9, 1.9, cold, store, warm]
            for name in ("crc32", "fft")]
    return {"name": "uarch_sweep", "data": {"rows": rows}}


def _write(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return str(path)


@pytest.fixture
def committed(tmp_path):
    return _write(tmp_path / "committed.json", _sweep_payload(2.0))


class TestCompare:
    def test_identical_results_geomean_one(self):
        data = _sweep_payload(2.0)["data"]
        geomean, detail = check_regression.compare(
            "uarch_sweep", data, data, 0.2)
        assert geomean == pytest.approx(1.0)
        assert len(detail) == 6  # 2 kernels x 3 ratio columns

    def test_only_common_keys_compared(self):
        fresh = _sweep_payload(2.0)["data"]
        committed = _sweep_payload(2.0)["data"]
        committed["rows"].append(["extra", 1, 1, 1, 9.0, 9.0, 9.0])
        geomean, detail = check_regression.compare(
            "uarch_sweep", fresh, committed, 0.2)
        assert geomean == pytest.approx(1.0)
        assert all(kernel in ("crc32", "fft")
                   for _, kernel, _ in (key for key, *_ in detail))

    def test_no_overlap_returns_none(self):
        geomean, detail = check_regression.compare(
            "uarch_sweep", {"rows": []}, _sweep_payload(2.0)["data"], 0.2)
        assert geomean is None and detail == []


class TestMain:
    def test_ok_within_threshold(self, tmp_path, committed, capsys):
        fresh = _write(tmp_path / "fresh.json", _sweep_payload(1.9))
        code = check_regression.main(["--bench", "uarch_sweep",
                                      "--fresh", fresh,
                                      "--committed", committed])
        assert code == check_regression.EXIT_OK
        assert "OK" in capsys.readouterr().out

    def test_regression_distinct_exit_code(self, tmp_path, committed,
                                           capsys):
        fresh = _write(tmp_path / "fresh.json",
                       _sweep_payload(1.0, store=1.2, warm=1.3))
        code = check_regression.main(["--bench", "uarch_sweep",
                                      "--fresh", fresh,
                                      "--committed", committed])
        assert code == check_regression.EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().err

    def test_corrupt_fresh_is_usage_error(self, tmp_path, committed):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = check_regression.main(["--bench", "uarch_sweep",
                                      "--fresh", str(bad),
                                      "--committed", committed])
        assert code == check_regression.EXIT_USAGE

    def test_missing_committed_baseline_passes(self, tmp_path, capsys):
        fresh = _write(tmp_path / "fresh.json", _sweep_payload(1.0))
        code = check_regression.main(
            ["--bench", "uarch_sweep", "--fresh", fresh,
             "--committed", str(tmp_path / "absent.json")])
        assert code == check_regression.EXIT_OK
        assert "nothing to compare" in capsys.readouterr().err

    def test_threshold_is_respected(self, tmp_path, committed):
        fresh = _write(tmp_path / "fresh.json", _sweep_payload(1.5))
        args = ["--bench", "uarch_sweep", "--fresh", fresh,
                "--committed", committed]
        assert check_regression.main(args + ["--threshold", "0.05"]) \
            == check_regression.EXIT_REGRESSION
        assert check_regression.main(args + ["--threshold", "0.5"]) \
            == check_regression.EXIT_OK

    def test_sim_turbo_spec_reads_both_tables(self, tmp_path):
        data = {"functional_rows": [["crc32", 1, 1, 1, 1, 3.0, 4.0]],
                "pipeline_rows": [["crc32", 1, 1, 1, 1.4]]}
        payload = {"name": "sim_turbo", "data": data}
        fresh = _write(tmp_path / "fresh.json", payload)
        committed = _write(tmp_path / "committed.json", payload)
        code = check_regression.main(["--bench", "sim_turbo",
                                      "--fresh", fresh,
                                      "--committed", committed])
        assert code == check_regression.EXIT_OK
