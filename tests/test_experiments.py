"""Integration tests for the experiment harness, on a small workload
subset so the suite stays fast.  The full-corpus runs live in
``benchmarks/`` and EXPERIMENTS.md."""

import pytest

from repro.evaluation import (
    base_config_comparison,
    baseline_cache_comparison,
    cache_correlation_study,
    design_change_study,
    stream_count_table,
    stride_coverage_table,
    workload_artifacts,
)
from repro.evaluation.experiments import clear_artifact_cache
from repro.uarch import BASE_CONFIG, CacheConfig

SUBSET = ["crc32", "sha"]
SMALL_SWEEP = [CacheConfig(256, 1, 32), CacheConfig(1024, 2, 32),
               CacheConfig(4096, 4, 32), CacheConfig(16384, "full", 32)]


class TestArtifacts:
    def test_memoized(self):
        first = workload_artifacts("crc32")
        second = workload_artifacts("crc32")
        assert first is second

    def test_pipeline_products(self):
        artifacts = workload_artifacts("crc32")
        assert artifacts.profile.total_instructions == len(artifacts.trace)
        assert len(artifacts.clone_trace) > 10_000
        assert artifacts.clone.program.name == "crc32.clone"

    def test_cache_clear(self):
        first = workload_artifacts("crc32")
        clear_artifact_cache()
        assert workload_artifacts("crc32") is not first


class TestFig3:
    def test_rows(self):
        rows = stride_coverage_table(SUBSET)
        assert [name for name, _ in rows] == SUBSET
        for _, coverage in rows:
            assert 0.0 <= coverage <= 1.0

    def test_regular_workload_high_coverage(self):
        # The paper's Figure 3 claim for well-behaved kernels.
        rows = dict(stride_coverage_table(["sha", "basicmath"]))
        assert rows["sha"] > 0.9
        assert rows["basicmath"] > 0.95


class TestFig4And5:
    @pytest.fixture(scope="class")
    def study(self):
        return cache_correlation_study(SUBSET, SMALL_SWEEP)

    def test_shapes(self, study):
        assert set(study["correlations"]) == set(SUBSET)
        for name in SUBSET:
            assert len(study["mpi_real"][name]) == len(SMALL_SWEEP)
            assert len(study["mpi_clone"][name]) == len(SMALL_SWEEP)

    def test_correlations_bounded(self, study):
        for value in study["correlations"].values():
            assert -1.0 <= value <= 1.0

    def test_average(self, study):
        expected = sum(study["correlations"].values()) / len(SUBSET)
        assert study["average_correlation"] == pytest.approx(expected)

    def test_mean_ranks_valid(self, study):
        n = len(SMALL_SWEEP)
        for ranks in (study["mean_rank_real"], study["mean_rank_clone"]):
            assert len(ranks) == n
            assert all(1.0 <= rank <= n for rank in ranks)

    def test_ranking_correlation_positive(self, study):
        # Bigger caches rank better for both real and clone.
        assert study["ranking_correlation"] > 0.8


class TestFig6And7:
    @pytest.fixture(scope="class")
    def comparison(self):
        return base_config_comparison(SUBSET, max_instructions=40_000)

    def test_rows_complete(self, comparison):
        assert [row["name"] for row in comparison["rows"]] == SUBSET
        for row in comparison["rows"]:
            assert 0 < row["ipc_real"] <= BASE_CONFIG.width
            assert 0 < row["ipc_clone"] <= BASE_CONFIG.width
            assert row["power_real"] > 0
            assert row["power_clone"] > 0

    def test_errors_reasonable(self, comparison):
        # The paper reports 8.73% / 6.44% on its corpus; allow headroom.
        assert comparison["average_ipc_error"] < 0.30
        assert comparison["average_power_error"] < 0.30


class TestTable3:
    @pytest.fixture(scope="class")
    def study(self):
        changes = [BASE_CONFIG.renamed("2x-width", width=2),
                   BASE_CONFIG.renamed("in-order", in_order=True)]
        return design_change_study(SUBSET, changes=changes,
                                   max_instructions=40_000)

    def test_change_rows(self, study):
        assert [row["change"] for row in study["changes"]] \
            == ["2x-width", "in-order"]
        for row in study["changes"]:
            assert 0.0 <= row["avg_ipc_relative_error"] < 0.5
            assert 0.0 <= row["avg_power_relative_error"] < 0.5

    def test_width_detail_speedups(self, study):
        detail = study["width_detail"]
        assert detail is not None
        for row in detail:
            assert row["speedup_real"] >= 0.9
            assert row["speedup_clone"] >= 0.9
            assert row["power_ratio_real"] > 1.0
            assert row["power_ratio_clone"] > 1.0


class TestAblations:
    def test_baseline_comparison(self):
        # Full 28-config sweep.  The paper's central claim: synthesis
        # tuned to one configuration's miss rate yields large errors when
        # the configuration changes; the microarchitecture-independent
        # clone does not.
        result = baseline_cache_comparison(["qsort", "sha"])
        for row in result["rows"]:
            assert 0.0 <= row["measured_miss_rate"] <= 1.0
            assert -1.0 <= row["baseline_correlation"] <= 1.0
            assert row["clone_mpi_error"] >= 0.0
        assert result["avg_clone_mpi_error"] \
            < 0.5 * result["avg_baseline_mpi_error"]

    def test_stream_count_table_sorted(self):
        rows = stream_count_table(SUBSET)
        streams = [row[1] for row in rows]
        assert streams == sorted(streams, reverse=True)
