"""Outcome-bank predictor sweeps and shared power models (reuse paths)."""

import dataclasses

import pytest

from repro.uarch import (
    BASE_CONFIG,
    PowerModel,
    power_key,
    reset_shared_power_models,
    shared_power_model,
    simulate_pipeline,
    simulate_predictor,
    simulate_predictor_sweep,
)
from repro.uarch.sweep import sweep_stats_snapshot

KINDS = [
    "gap",
    "bimodal",
    "nottaken",
    "taken",
    ("gshare", {"history_bits": 6}),
    ("bimodal", {"entries": 256}),
]


class TestPredictorSweep:
    def test_matches_direct_simulation(self, loop_nest_trace):
        swept = simulate_predictor_sweep(loop_nest_trace, KINDS)
        assert len(swept) == len(KINDS)
        for spec, predictor in zip(KINDS, swept):
            kind, kwargs = (spec, {}) if isinstance(spec, str) else spec
            direct = simulate_predictor(loop_nest_trace, kind, **kwargs)
            assert predictor.stats.lookups == direct.stats.lookups
            assert predictor.stats.mispredictions == \
                direct.stats.mispredictions

    def test_results_in_spec_order(self, loop_nest_trace):
        from repro.uarch import AlwaysNotTaken, TwoLevelGAp
        gap, nottaken = simulate_predictor_sweep(
            loop_nest_trace, ["gap", "nottaken"])
        assert isinstance(gap, TwoLevelGAp)
        assert isinstance(nottaken, AlwaysNotTaken)

    def test_counters_advance(self, loop_nest_trace):
        before = sweep_stats_snapshot()
        simulate_predictor_sweep(loop_nest_trace, ["gap", "bimodal"])
        after = sweep_stats_snapshot()
        assert after["predictor_sweeps"] == before["predictor_sweeps"] + 1
        assert after["predictor_sweep_kinds"] == \
            before["predictor_sweep_kinds"] + 2

    def test_second_sweep_reuses_banks(self, loop_nest_trace):
        simulate_predictor_sweep(loop_nest_trace, ["gap"])
        before = sweep_stats_snapshot()
        simulate_predictor_sweep(loop_nest_trace, ["gap"])
        after = sweep_stats_snapshot()
        # The outcome bank for (trace, gap) already exists: no rebuild.
        assert after["pred_banks_built"] == before["pred_banks_built"]


class TestSharedPowerModels:
    def setup_method(self):
        reset_shared_power_models()

    def test_one_model_per_geometry(self):
        first = shared_power_model(BASE_CONFIG)
        again = shared_power_model(BASE_CONFIG)
        assert first is again

    def test_latency_knobs_share_a_model(self):
        slow_memory = dataclasses.replace(BASE_CONFIG, name="slow",
                                          memory_latency=400)
        assert power_key(slow_memory) == power_key(BASE_CONFIG)
        assert shared_power_model(slow_memory) is \
            shared_power_model(BASE_CONFIG)

    def test_geometry_knobs_split_models(self):
        wide = dataclasses.replace(BASE_CONFIG, name="wide", width=8)
        assert power_key(wide) != power_key(BASE_CONFIG)
        assert shared_power_model(wide) is not \
            shared_power_model(BASE_CONFIG)

    def test_counters_advance(self):
        before = sweep_stats_snapshot()
        shared_power_model(BASE_CONFIG)
        shared_power_model(BASE_CONFIG)
        after = sweep_stats_snapshot()
        assert after["power_models_built"] == \
            before["power_models_built"] + 1
        assert after["power_models_reused"] == \
            before["power_models_reused"] + 1

    def test_shared_evaluation_matches_private_model(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG,
                                   max_instructions=20_000)
        private = PowerModel(BASE_CONFIG).evaluate(result).total
        shared = shared_power_model(BASE_CONFIG).evaluate(result).total
        assert shared == pytest.approx(private, rel=0, abs=0)
