"""Recipe expansion: determinism, stable cell ids, validation."""

import json

import pytest

from repro.fleet import Recipe, RecipeError, load_recipe, save_recipe
from repro.fleet.recipe import recipe_from_dict
from repro.uarch import BASE_CONFIG


def grid_recipe(**overrides):
    payload = {
        "name": "grid",
        "kernels": ["crc32", "sha"],
        "pipeline_cap": 20_000,
        "axes": {"width": [1, 2], "predictor": ["gap", "nottaken"]},
    }
    payload.update(overrides)
    return Recipe(**payload)


class TestExpansion:
    def test_deterministic(self):
        a = grid_recipe().expand()
        b = grid_recipe().expand()
        assert [cell.cell_id for cell in a] == [cell.cell_id for cell in b]
        assert [cell.to_dict() for cell in a] == [cell.to_dict() for cell in b]

    def test_kernel_major_trace_contiguity(self):
        cells = grid_recipe().expand()
        assert len(cells) == 2 * 4
        # All cells sharing a trace are contiguous in expansion order.
        seen = []
        for cell in cells:
            if not seen or seen[-1] != cell.trace_key:
                seen.append(cell.trace_key)
        assert len(seen) == len(set(seen)) == 2

    def test_axes_expand_last_axis_fastest(self):
        names = [config.name for config in grid_recipe().expand_configs()]
        assert names == [
            "width=1,predictor=gap", "width=1,predictor=nottaken",
            "width=2,predictor=gap", "width=2,predictor=nottaken",
        ]

    def test_indices_are_expansion_order(self):
        cells = grid_recipe().expand()
        assert [cell.index for cell in cells] == list(range(len(cells)))

    def test_base_overrides_apply_to_every_config(self):
        recipe = grid_recipe(base={"rob_size": 4})
        for config in recipe.expand_configs():
            assert config.rob_size == 4

    def test_explicit_configs_appended(self):
        recipe = grid_recipe(configs=[{"name": "big-l1d",
                                       "l1d": [32768, 4, 32]}])
        configs = recipe.expand_configs()
        assert configs[-1].name == "big-l1d"
        assert configs[-1].l1d.size == 32768
        assert configs[-1].l1d.assoc == 4

    def test_no_axes_times_base_config_once(self):
        recipe = Recipe(name="solo", kernels=["crc32"])
        configs = recipe.expand_configs()
        assert len(configs) == 1
        assert configs[0].width == BASE_CONFIG.width

    def test_null_l2_allowed(self):
        recipe = Recipe(name="nol2", kernels=["crc32"],
                        axes={"l2": [None, [65536, 4, 64]]})
        configs = recipe.expand_configs()
        assert configs[0].l2 is None
        assert configs[1].l2.size == 65536


class TestCellIds:
    def test_id_captures_config(self):
        wide = Recipe(name="a", kernels=["crc32"], axes={"width": [2]})
        narrow = Recipe(name="a", kernels=["crc32"], axes={"width": [1]})
        assert wide.expand()[0].cell_id != narrow.expand()[0].cell_id

    def test_id_captures_pipeline_cap(self):
        a = Recipe(name="a", kernels=["crc32"], pipeline_cap=10_000)
        b = Recipe(name="a", kernels=["crc32"], pipeline_cap=20_000)
        assert a.expand()[0].cell_id != b.expand()[0].cell_id

    def test_id_captures_subject_and_seed(self):
        real = Recipe(name="a", kernels=["crc32"], subject="real")
        clone = Recipe(name="a", kernels=["crc32"], subject="clone")
        reseeded = Recipe(name="a", kernels=["crc32"], subject="clone",
                          seeds=[7])
        ids = {recipe.expand()[0].cell_id
               for recipe in (real, clone, reseeded)}
        assert len(ids) == 3

    def test_id_ignores_recipe_name(self):
        # Cell identity is the cell's physics, not the matrix label.
        a = Recipe(name="a", kernels=["crc32"])
        b = Recipe(name="b", kernels=["crc32"])
        assert a.expand()[0].cell_id == b.expand()[0].cell_id

    def test_axes_order_is_semantic(self):
        # Order defines expansion order, so it must survive the save/
        # load round trip and be captured by the digest.
        ab = grid_recipe(axes={"width": [1, 2], "rob_size": [8, 16]})
        ba = grid_recipe(axes={"rob_size": [8, 16], "width": [1, 2]})
        assert ab.digest() != ba.digest()
        assert [c.name for c in ab.expand_configs()] != \
            [c.name for c in ba.expand_configs()]

    def test_axes_accepts_pair_list(self):
        pairs = grid_recipe(axes=[["width", [1, 2]],
                                  ["predictor", ["gap", "nottaken"]]])
        assert pairs.digest() == grid_recipe().digest()

    def test_digest_captures_everything(self):
        assert grid_recipe().digest() == grid_recipe().digest()
        assert grid_recipe().digest() != \
            grid_recipe(pipeline_cap=30_000).digest()
        assert grid_recipe().digest() != grid_recipe(name="other").digest()


class TestValidation:
    def test_unknown_axis_field(self):
        with pytest.raises(RecipeError, match="unknown config field"):
            Recipe(name="x", kernels=["crc32"], axes={"wdith": [1]})

    def test_unknown_base_field(self):
        with pytest.raises(RecipeError, match="unknown config field"):
            Recipe(name="x", kernels=["crc32"], base={"robsize": 4})

    def test_bad_subject(self):
        with pytest.raises(RecipeError, match="subject"):
            Recipe(name="x", kernels=["crc32"], subject="imaginary")

    def test_needs_kernels(self):
        with pytest.raises(RecipeError, match="kernel"):
            Recipe(name="x", kernels=[])

    def test_duplicate_config_names(self):
        recipe = Recipe(name="x", kernels=["crc32"],
                        configs=[{"name": "dup", "width": 1},
                                 {"name": "dup", "width": 2}])
        with pytest.raises(RecipeError, match="duplicate"):
            recipe.expand_configs()

    def test_unknown_recipe_key(self):
        with pytest.raises(RecipeError, match="unknown recipe keys"):
            recipe_from_dict({"name": "x", "kernels": ["crc32"],
                              "kernel": ["typo"]})

    def test_schema_mismatch(self):
        with pytest.raises(RecipeError, match="schema"):
            recipe_from_dict({"schema": 99, "name": "x",
                              "kernels": ["crc32"]})

    def test_bad_cache_spec(self):
        recipe = Recipe(name="x", kernels=["crc32"],
                        axes={"l1d": [[1024]]})
        with pytest.raises(RecipeError, match="size, assoc, line"):
            recipe.expand_configs()

    def test_l1d_cannot_be_null(self):
        recipe = Recipe(name="x", kernels=["crc32"], axes={"l1d": [None]})
        with pytest.raises(RecipeError, match="cannot be null"):
            recipe.expand_configs()


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        recipe = grid_recipe(base={"rob_size": 8},
                             configs=[{"name": "big", "width": 4}])
        path = tmp_path / "recipe.json"
        save_recipe(recipe, str(path))
        loaded = load_recipe(str(path))
        assert loaded.digest() == recipe.digest()
        assert [cell.cell_id for cell in loaded.expand()] == \
            [cell.cell_id for cell in recipe.expand()]

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("[1, 2]")
        with pytest.raises(RecipeError, match="JSON object"):
            load_recipe(str(path))

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{nope")
        with pytest.raises(RecipeError, match="not valid JSON"):
            load_recipe(str(path))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(RecipeError, match="cannot read"):
            load_recipe(str(tmp_path / "absent.json"))

    def test_saved_form_is_canonical_json(self, tmp_path):
        recipe = grid_recipe()
        path = tmp_path / "recipe.json"
        save_recipe(recipe, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["kernels"] == ["crc32", "sha"]
