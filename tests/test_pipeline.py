"""Tests for the out-of-order timing model: sanity bounds and the
directional effects each paper design change must produce."""

import pytest

from repro.isa import assemble
from repro.sim import run_program
from repro.uarch import BASE_CONFIG, simulate_pipeline
from repro.uarch.cache import CacheConfig


def straightline(n_ops=100, dependent=False, iterations=60):
    """A loop whose body is independent or serially dependent ALU work
    (looped so I-cache warmup does not dominate the measurement)."""
    lines = ["    .text", "    li r1, 1", f"    li r9, {iterations}",
             "    li r10, 0", "top:"]
    for i in range(n_ops):
        if dependent:
            lines.append("    add r2, r2, r1")
        else:
            lines.append(f"    add r{2 + (i % 6)}, r1, r1")
    lines += ["    addi r10, r10, 1", "    blt r10, r9, top", "    halt"]
    return assemble("\n".join(lines), name="straightline")


class TestSanity:
    def test_ipc_positive_and_bounded(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert 0.0 < result.ipc <= BASE_CONFIG.width

    def test_instruction_count_matches_trace(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert result.instructions == len(loop_nest_trace)

    def test_max_instructions_cap(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG,
                                   max_instructions=1000)
        assert result.instructions == 1000

    def test_class_counts_sum(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert sum(result.class_counts) == result.instructions

    def test_dcache_accesses_match_memory_ops(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert result.dcache_accesses == loop_nest_trace.summary()["memory_ops"]

    def test_branch_lookups_match(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert result.branch_lookups == loop_nest_trace.summary()["branches"]

    def test_determinism(self, loop_nest_trace):
        a = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        b = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert a.cycles == b.cycles


class TestDirectionalEffects:
    """Each of the paper's five design changes must move IPC the right way."""

    def run(self, trace, **changes):
        config = BASE_CONFIG.renamed("variant", **changes)
        return simulate_pipeline(trace, config)

    def test_wider_machine_is_faster_on_ilp_code(self):
        trace = run_program(straightline(dependent=False))
        narrow = simulate_pipeline(trace, BASE_CONFIG)
        wide = self.run(trace, width=2)
        assert wide.ipc > narrow.ipc * 1.3

    def test_width_useless_on_dependency_chain(self):
        trace = run_program(straightline(dependent=True))
        narrow = simulate_pipeline(trace, BASE_CONFIG)
        wide = self.run(trace, width=2)
        assert wide.ipc <= narrow.ipc * 1.15

    def test_bigger_rob_never_hurts(self, loop_nest_trace):
        base = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        bigger = self.run(loop_nest_trace, rob_size=32, lsq_size=16)
        assert bigger.ipc >= base.ipc * 0.999

    def test_smaller_l1d_never_helps(self, loop_nest_trace):
        base = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        smaller = self.run(loop_nest_trace,
                           l1d=CacheConfig(8 * 1024, 2, 32))
        assert smaller.ipc <= base.ipc * 1.001

    def test_nottaken_predictor_hurts_loops(self, loop_nest_trace):
        base = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        worse = self.run(loop_nest_trace, predictor="nottaken")
        assert worse.ipc < base.ipc

    def test_in_order_never_faster(self, loop_nest_trace):
        base = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        in_order = self.run(loop_nest_trace, in_order=True)
        assert in_order.ipc <= base.ipc * 1.001

    def test_slower_memory_hurts(self, loop_nest_trace):
        fast = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        slow = self.run(loop_nest_trace, memory_latency=200)
        assert slow.ipc < fast.ipc

    def test_bigger_mispredict_penalty_hurts(self, loop_nest_trace):
        base = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        worse = self.run(loop_nest_trace, mispredict_penalty=30,
                         predictor="nottaken")
        mild = self.run(loop_nest_trace, predictor="nottaken")
        assert worse.ipc < mild.ipc <= base.ipc


class TestConfig:
    def test_base_matches_paper_table2(self):
        assert BASE_CONFIG.width == 1
        assert BASE_CONFIG.rob_size == 16
        assert BASE_CONFIG.lsq_size == 8
        assert BASE_CONFIG.fetch_queue == 8
        assert BASE_CONFIG.n_int_alu == 2
        assert BASE_CONFIG.n_fp_mul == 1
        assert BASE_CONFIG.n_fp_alu == 1
        assert BASE_CONFIG.l1i.size == 16 * 1024 and BASE_CONFIG.l1i.ways == 2
        assert BASE_CONFIG.l1d.size == 16 * 1024
        assert BASE_CONFIG.l2.size == 64 * 1024 and BASE_CONFIG.l2.ways == 4
        assert BASE_CONFIG.memory_latency == 40
        assert BASE_CONFIG.predictor == "gap"
        assert not BASE_CONFIG.in_order

    def test_renamed_does_not_mutate(self):
        variant = BASE_CONFIG.renamed("x", width=4)
        assert BASE_CONFIG.width == 1
        assert variant.width == 4
        assert variant.name == "x"

    def test_design_changes_list(self):
        from repro.uarch import DESIGN_CHANGES
        names = [config.name for config in DESIGN_CHANGES]
        assert names == ["2x-rob-lsq", "half-l1d", "2x-width",
                         "nottaken-bpred", "in-order"]
        by_name = {config.name: config for config in DESIGN_CHANGES}
        assert by_name["2x-rob-lsq"].rob_size == 32
        assert by_name["half-l1d"].l1d.size == 8 * 1024
        assert by_name["2x-width"].width == 2
        assert by_name["nottaken-bpred"].predictor == "nottaken"
        assert by_name["in-order"].in_order

    def test_cache_sweep_is_28_unique(self):
        from repro.uarch import CACHE_SWEEP
        assert len(CACHE_SWEEP) == 28
        assert len({config.label() for config in CACHE_SWEEP}) == 28
        assert CACHE_SWEEP[0].size == 256 and CACHE_SWEEP[0].ways == 1
        sizes = {config.size for config in CACHE_SWEEP}
        assert min(sizes) == 256 and max(sizes) == 16 * 1024


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def _telemetry_on(self):
        from repro.obs import REGISTRY
        was_enabled = REGISTRY.enabled
        REGISTRY.enable()
        yield
        if not was_enabled:
            REGISTRY.disable()

    def test_stall_counters_present_and_consistent(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert result.rob_stalls >= 0
        assert result.lsq_stalls >= 0
        assert result.fetch_queue_stalls >= 0
        assert result.redirect_cycles >= 0
        # Redirect stalls come from mispredictions; no mispredicts on a
        # trace means no redirect cycles.
        if result.branch_mispredictions == 0:
            assert result.redirect_cycles == 0

    def test_smaller_rob_stalls_more(self, loop_nest_trace):
        roomy = simulate_pipeline(
            loop_nest_trace, BASE_CONFIG.renamed("roomy", rob_size=256))
        tight = simulate_pipeline(
            loop_nest_trace, BASE_CONFIG.renamed("tight", rob_size=4))
        assert tight.rob_stalls >= roomy.rob_stalls

    def test_simulated_mips_measured(self, loop_nest_trace):
        result = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        assert result.wall_seconds > 0.0
        assert result.simulated_mips > 0.0

    def test_simulated_mips_zero_without_wall_time(self):
        from repro.uarch.pipeline import PipelineResult
        result = PipelineResult(config=BASE_CONFIG, instructions=100,
                                cycles=100)
        assert result.simulated_mips == 0.0
