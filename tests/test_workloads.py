"""Corpus-level tests: every workload builds, runs, halts, and — where a
Python reference is practical — computes the right answer."""

import binascii
import math

import numpy as np
import pytest

from repro.workloads import (
    all_workloads,
    build_workload,
    domains,
    get_workload,
    workload_names,
)
from repro.workloads._support import Lcg
from repro.sim import run_program

NAMES = workload_names()


@pytest.fixture(scope="module")
def finished():
    """Run every workload once; cache the finished simulators."""
    cache = {}

    def run(name):
        if name not in cache:
            program = build_workload(name)
            simulator = run_program(program, max_instructions=5_000_000,
                                    trace=False)
            cache[name] = (program, simulator)
        return cache[name]

    return run


class TestRegistry:
    def test_twenty_three_workloads(self):
        assert len(NAMES) == 23

    def test_paper_table1_domains_present(self):
        table = domains()
        assert set(table) == {"automotive", "consumer", "media", "network",
                              "office", "security", "telecom"}

    def test_domain_sizes(self):
        table = domains()
        assert table["automotive"] == ["basicmath", "bitcount", "qsort",
                                       "susan"]
        assert table["network"] == ["dijkstra", "patricia"]
        assert len(table["telecom"]) == 4

    def test_suites(self):
        suites = {spec.suite for spec in all_workloads()}
        assert suites == {"mibench", "mediabench"}

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_sources_deterministic(self):
        spec = get_workload("crc32")
        assert spec.source() == spec.source()


@pytest.mark.parametrize("name", NAMES)
class TestEveryWorkload:
    def test_builds_and_halts(self, name, finished):
        program, simulator = finished(name)
        assert simulator.halted
        assert 20_000 <= simulator.instructions_executed <= 1_000_000

    def test_has_memory_and_branch_activity(self, name):
        program = build_workload(name)
        trace = run_program(program, max_instructions=5_000_000)
        summary = trace.summary()
        assert summary["memory_ops"] / summary["instructions"] > 0.02
        assert summary["branches"] / summary["instructions"] > 0.01


class TestQsort:
    def test_array_is_sorted(self, finished):
        program, simulator = finished("qsort")
        base = program.data_symbols["arr"]
        n = simulator.memory.read_word(program.data_symbols["nelem"])
        values = simulator.memory.read_words(base, n)
        assert values == sorted(values)

    def test_same_multiset(self, finished):
        program, simulator = finished("qsort")
        base = program.data_symbols["arr"]
        n = simulator.memory.read_word(program.data_symbols["nelem"])
        values = simulator.memory.read_words(base, n)
        assert sorted(Lcg(0x5047).words(n, 1 << 20)) == values


class TestCrc32:
    def test_matches_zlib_crc(self, finished):
        program, simulator = finished("crc32")
        data = bytes(Lcg(0xC3C).bytes(9 * 1024))
        expected = binascii.crc32(data) & 0xFFFFFFFF
        result = simulator.memory.read_word(program.data_symbols["result"])
        assert result == expected


class TestBitcount:
    def test_both_methods_agree_with_popcount(self, finished):
        program, simulator = finished("bitcount")
        data = Lcg(0xB17C).words(640)
        expected = sum(bin(v).count("1") for v in data)
        counts = program.data_symbols["counts"]
        assert simulator.memory.read_word(counts) == expected
        assert simulator.memory.read_word(counts + 4) == expected


class TestBasicmath:
    def test_isqrt_results(self, finished):
        program, simulator = finished("basicmath")
        inputs = Lcg(0xB451C)
        # Reproduce the input stream: skip the cubic coefficients.
        for _ in range(280 * 3):
            inputs.doubles(1, -3.0, 3.0)
        values = inputs.words(380, 1 << 26)
        base = program.data_symbols["isq_out"]
        outputs = simulator.memory.read_words(base, 380)
        for value, output in zip(values, outputs):
            assert output == math.isqrt(value)

    def test_cubic_roots_are_roots(self, finished):
        program, simulator = finished("basicmath")
        rng = Lcg(0xB451C)
        roots_base = program.data_symbols["roots"]
        converged = 0
        for index in range(280):
            a, b, c = (round(v, 6) for v in rng.doubles(3, -3.0, 3.0))
            x = simulator.memory.read_double(roots_base + 8 * index)
            assert math.isfinite(x)
            residual = ((x + a) * x + b) * x + c
            if abs(residual) < 1e-3:
                converged += 1
        # Twelve fixed Newton steps from x0=1 converge for the large
        # majority of coefficient draws (some oscillate, as in the real
        # kernel with a fixed iteration count).
        assert converged > 190

    def test_deg2rad(self, finished):
        program, simulator = finished("basicmath")
        rng = Lcg(0xB451C)
        for _ in range(280 * 3):
            rng.doubles(1, -3.0, 3.0)
        rng.words(380, 1 << 26)
        degrees = [round(v, 6) for v in rng.doubles(600, 0.0, 360.0)]
        base = program.data_symbols["rads"]
        for index in (0, 100, 599):
            measured = simulator.memory.read_double(base + 8 * index)
            assert measured == pytest.approx(math.radians(degrees[index]),
                                             rel=1e-12)


class TestDijkstra:
    def test_distances_match_networkx(self, finished):
        import networkx
        program, simulator = finished("dijkstra")
        n, inf = 36, 1 << 28
        rng = Lcg(0xD1357)
        graph = networkx.DiGraph()
        graph.add_nodes_from(range(n))
        for row in range(n):
            for col in range(n):
                if row == col:
                    continue
                if rng.below(100) < 30:
                    graph.add_edge(row, col, weight=1 + rng.below(100))
        expected_total = 0
        for source in range(5):
            lengths = networkx.single_source_dijkstra_path_length(
                graph, source, weight="weight")
            expected_total += sum(length for node, length in lengths.items())
        measured = simulator.memory.read_word(program.data_symbols["total"])
        assert measured == expected_total


class TestSha:
    def _reference_digest(self):
        rng = Lcg(0x5A1)
        words = rng.words(16 * 36)
        h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
        mask = 0xFFFFFFFF

        def rotl(value, amount):
            return ((value << amount) | (value >> (32 - amount))) & mask

        for block in range(36):
            w = list(words[16 * block:16 * block + 16])
            for t in range(16, 80):
                w.append(rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
            a, b, c, d, e = h
            for t in range(80):
                if t < 20:
                    f, k = (b & c) | (~b & d), 0x5A827999
                elif t < 40:
                    f, k = b ^ c ^ d, 0x6ED9EBA1
                elif t < 60:
                    f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
                else:
                    f, k = b ^ c ^ d, 0xCA62C1D6
                temp = (rotl(a, 5) + f + e + k + w[t]) & mask
                e, d, c, b, a = d, c, rotl(b, 30), a, temp
            h = [(x + y) & mask for x, y in zip(h, (a, b, c, d, e))]
        return h

    def test_digest_matches_reference(self, finished):
        program, simulator = finished("sha")
        base = program.data_symbols["digest"]
        measured = [simulator.memory.read_word(base + 4 * i)
                    for i in range(5)]
        assert measured == self._reference_digest()


class TestPatricia:
    def test_hit_count_matches_membership(self, finished):
        program, simulator = finished("patricia")
        rng = Lcg(0xA731)
        inserts = rng.words(360)
        lookups = []
        for i in range(850):
            if i % 2 == 0:
                lookups.append(inserts[rng.below(360)])
            else:
                lookups.append(rng.next_u32() & 0x7FFFFFFF)
        inserted = set(inserts)
        expected = sum(1 for key in lookups if key in inserted)
        measured = simulator.memory.read_word(program.data_symbols["hits"])
        assert measured == expected


class TestIspell:
    def test_correct_count(self, finished):
        program, simulator = finished("ispell")
        rng = Lcg(0x15B)
        dictionary = [tuple(rng.bytes(8, 26)) for _ in range(420)]
        queries = []
        for i in range(700):
            if i % 2 == 0:
                queries.append(dictionary[rng.below(420)])
            else:
                queries.append(tuple(rng.bytes(8, 26)))
        words = set(dictionary)
        expected = sum(1 for query in queries if query in words)
        measured = simulator.memory.read_word(
            program.data_symbols["correct"])
        assert measured == expected


class TestFft:
    def test_matches_numpy_fft(self, finished):
        program, simulator = finished("fft")
        # Rebuild signal 2 (the last one left in the work arrays).
        rng = Lcg(0xFF7)
        signals = []
        for s in range(3):
            phase = 0.0
            signal = []
            for _ in range(256):
                phase += 0.19 + 0.11 * s
                signal.append(round(math.sin(phase)
                                    + 0.5 * math.sin(2.7 * phase + s), 9))
            signals.append(signal)
        expected = np.fft.fft(np.array(signals[2]))
        re_base = program.data_symbols["re"]
        im_base = program.data_symbols["im"]
        measured_re = np.array([simulator.memory.read_double(re_base + 8 * i)
                                for i in range(256)])
        measured_im = np.array([simulator.memory.read_double(im_base + 8 * i)
                                for i in range(256)])
        assert np.allclose(measured_re, expected.real, atol=1e-6)
        assert np.allclose(measured_im, expected.imag, atol=1e-6)


class TestTypeset:
    def test_line_breaking_matches_reference(self, finished):
        program, simulator = finished("typeset")
        widths = [2 + Lcg(0x7E5E).below(12) for _ in range(2200)]
        # replay with a fresh LCG (the comprehension above shares one)
        rng = Lcg(0x7E5E)
        widths = [2 + rng.below(12) for _ in range(2200)]
        line_width, length, lines, badness = 62, 0, 0, 0
        for width in widths:
            # Mirror the kernel: the inter-word space is added to the
            # running length *before* the fit test, so the slack of a
            # broken line includes it.
            if length:
                length += 1
            if length + width > line_width:
                slack = line_width - length
                penalty = slack * slack
                if slack >= 20:
                    penalty *= slack
                badness += penalty
                lines += 1
                length = width
            else:
                length += width
        assert simulator.memory.read_word(
            program.data_symbols["lines"]) == lines
        assert simulator.memory.read_word(
            program.data_symbols["badsum"]) == badness & 0xFFFFFFFF


class TestBlowfish:
    def test_encryption_matches_reference(self, finished):
        program, simulator = finished("blowfish")
        rng = Lcg(0xB10F)
        p_array = rng.words(18)
        sboxes = rng.words(4 * 256)
        blocks = rng.words(2 * 220)
        mask = 0xFFFFFFFF

        def feistel(x):
            a, b = (x >> 24) & 0xFF, (x >> 16) & 0xFF
            c, d = (x >> 8) & 0xFF, x & 0xFF
            out = (sboxes[a] + sboxes[256 + b]) & mask
            out ^= sboxes[512 + c]
            return (out + sboxes[768 + d]) & mask

        base = program.data_symbols["blocks"]
        for index in range(0, 6):  # spot-check first blocks
            left, right = blocks[2 * index], blocks[2 * index + 1]
            for round_index in range(16):
                left ^= p_array[round_index]
                right ^= feistel(left)
                left, right = right, left
            left, right = right, left
            right ^= p_array[16]
            left ^= p_array[17]
            measured_l = simulator.memory.read_word(base + 8 * index)
            measured_r = simulator.memory.read_word(base + 8 * index + 4)
            assert (measured_l, measured_r) == (left, right)


class TestG721AndFriends:
    def test_adpcm_codes_in_range(self, finished):
        program, simulator = finished("adpcm")
        base = program.data_symbols["out"]
        codes = [simulator.memory.read_byte(base + i) for i in range(2400)]
        assert all(0 <= code <= 15 for code in codes)
        assert len(set(codes)) > 4  # actually varies

    def test_g721_codes_in_range(self, finished):
        program, simulator = finished("g721")
        base = program.data_symbols["codes"]
        codes = [simulator.memory.read_byte(base + i) for i in range(1300)]
        assert all(0 <= code <= 15 for code in codes)
        assert len(set(codes)) > 4

    def test_epic_pyramid_written(self, finished):
        program, simulator = finished("epic")
        base = program.data_symbols["pyr"]
        top_level = simulator.memory.read_words(base, 8 * 8)
        assert any(value != 0 for value in top_level)
        assert all(0 <= value < 1024 for value in top_level)

    def test_jpeg_dc_coefficients_reasonable(self, finished):
        program, simulator = finished("jpeg")
        base = program.data_symbols["coef"]
        # DC coefficient of block 0 ~ 8 * mean(pixel - 128) / quant[0].
        rng = Lcg(0x1E6)
        image = rng.bytes(32 * 32)
        block = [image[y * 32 + x] - 128 for y in range(8) for x in range(8)]
        dc_estimate = sum(block) // 2 // 16  # cos=1024>>10 twice, quant 16
        measured = simulator.memory.read_word_signed(base)
        assert abs(measured - dc_estimate) <= max(4, abs(dc_estimate))

    def test_rsynth_waveform_nonzero(self, finished):
        program, simulator = finished("rsynth")
        base = program.data_symbols["wave"]
        samples = simulator.memory.read_words(base, 200)
        assert any(samples)
        assert max(abs(s) for s in samples) < 2 ** 20
