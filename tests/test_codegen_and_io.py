"""Tests for profile serialization and the C-with-asm emitter (step 12)."""

from repro.core import WorkloadProfile, emit_c_source
from repro.core.profile import BranchStats, MemOpStats


class TestProfileIO:
    def test_json_round_trip(self, loop_nest_profile):
        text = loop_nest_profile.to_json()
        restored = WorkloadProfile.from_json(text)
        assert restored.to_dict() == loop_nest_profile.to_dict()

    def test_round_trip_preserves_types(self, loop_nest_profile):
        restored = WorkloadProfile.from_json(loop_nest_profile.to_json())
        for key in restored.contexts:
            assert isinstance(key, tuple) and len(key) == 2
        for pc, stats in restored.mem_ops.items():
            assert isinstance(pc, int)
            assert isinstance(stats, MemOpStats)
        for stats in restored.branches.values():
            assert isinstance(stats, BranchStats)

    def test_file_round_trip(self, tmp_path, loop_nest_profile):
        path = tmp_path / "profile.json"
        loop_nest_profile.save(path)
        assert WorkloadProfile.load(path).to_dict() \
            == loop_nest_profile.to_dict()

    def test_clone_from_restored_profile_identical(self, loop_nest_profile):
        """A vendor can ship the JSON profile instead of the binary."""
        from repro.core import make_clone
        from repro.core.synthesizer import SynthesisParameters
        params = SynthesisParameters(dynamic_instructions=15_000)
        direct = make_clone(loop_nest_profile, params)
        restored = WorkloadProfile.from_json(loop_nest_profile.to_json())
        via_json = make_clone(restored, params)
        assert direct.asm_source == via_json.asm_source


class TestCEmitter:
    def test_structure(self, loop_nest_clone):
        source = emit_c_source(loop_nest_clone.program)
        assert source.startswith("/*")
        assert "#include <stdlib.h>" in source
        assert "int main(void)" in source
        assert "malloc(" in source
        assert "free(streams);" in source
        assert source.rstrip().endswith("}")

    def test_every_statement_volatile(self, loop_nest_clone):
        source = emit_c_source(loop_nest_clone.program)
        for line in source.splitlines():
            if "asm " in line:
                assert "volatile" in line

    def test_labels_and_gotos(self, loop_nest_clone):
        source = emit_c_source(loop_nest_clone.program)
        # Block labels are emitted (co-located labels may be coalesced).
        assert "bb0:" in source
        assert "goto done;" in source

    def test_data_symbols_exposed(self, loop_nest_clone):
        source = emit_c_source(loop_nest_clone.program)
        for symbol in loop_nest_clone.program.data_symbols:
            assert f"void *{symbol}" in source

    def test_no_data_program(self):
        from repro.isa import assemble
        program = assemble("    .text\n    nop\n    halt\n")
        source = emit_c_source(program)
        assert "malloc" not in source

    def test_balanced_braces(self, loop_nest_clone):
        source = emit_c_source(loop_nest_clone.program)
        assert source.count("{") == source.count("}")
