"""Affinity scheduling: trace grouping, LPT sharding, tail stealing."""

from repro.fleet import Recipe
from repro.fleet.scheduler import (
    affinity_key,
    build_shards,
    group_by_trace,
    order_cells,
    steal_candidates,
)


def grid_cells(kernels=("crc32", "sha", "qsort"), **overrides):
    payload = {
        "name": "sched",
        "kernels": list(kernels),
        "axes": {"l1d": [[8192, 2, 32], [16384, 2, 32]],
                 "predictor": ["gap", "bimodal"],
                 "width": [1, 2]},
    }
    payload.update(overrides)
    return Recipe(**payload).expand()


class TestOrdering:
    def test_groups_cover_all_cells_once(self):
        cells = grid_cells()
        groups = group_by_trace(cells)
        flat = [cell.cell_id for group in groups for cell in group]
        assert sorted(flat) == sorted(cell.cell_id for cell in cells)
        assert len(flat) == len(set(flat))

    def test_groups_are_single_trace(self):
        for group in group_by_trace(grid_cells()):
            assert len({cell.trace_key for cell in group}) == 1

    def test_hierarchy_outermost_sort(self):
        # Within a trace group, all cells sharing a cache hierarchy are
        # contiguous: the expensive bank is derived once per block.
        [group] = group_by_trace(grid_cells(kernels=("crc32",)))
        hierarchies = [repr(cell.config.l1d) for cell in group]
        seen = []
        for value in hierarchies:
            if not seen or seen[-1] != value:
                seen.append(value)
        assert len(seen) == len(set(seen)) == 2

    def test_order_is_deterministic(self):
        a = [cell.cell_id for cell in order_cells(grid_cells())]
        b = [cell.cell_id for cell in order_cells(grid_cells())]
        assert a == b

    def test_affinity_key_total_order(self):
        cells = grid_cells(kernels=("crc32",))
        keys = [affinity_key(cell) for cell in cells]
        assert len(set(keys)) == len(keys)


class TestSharding:
    def test_shards_partition_exactly(self):
        cells = grid_cells()
        shards = build_shards(cells, 2)
        flat = [cell.cell_id for shard in shards for cell in shard]
        assert sorted(flat) == sorted(cell.cell_id for cell in cells)

    def test_trace_groups_never_split(self):
        shards = build_shards(grid_cells(), 2)
        placement = {}
        for index, shard in enumerate(shards):
            for cell in shard:
                placement.setdefault(cell.trace_key, set()).add(index)
        assert all(len(where) == 1 for where in placement.values())

    def test_lpt_balances_equal_groups(self):
        # 3 equal-size trace groups over 3 shards: one each.
        shards = build_shards(grid_cells(), 3)
        assert sorted(len(shard) for shard in shards) == [8, 8, 8]

    def test_more_shards_than_groups_leaves_empties(self):
        shards = build_shards(grid_cells(kernels=("crc32",)), 4)
        assert len(shards) == 4
        assert sorted(len(shard) for shard in shards) == [0, 0, 0, 8]

    def test_deterministic(self):
        a = build_shards(grid_cells(), 2)
        b = build_shards(grid_cells(), 2)
        assert [[cell.cell_id for cell in shard] for shard in a] == \
            [[cell.cell_id for cell in shard] for shard in b]


class TestStealing:
    def test_steals_from_tail_of_heaviest(self):
        shards = build_shards(grid_cells(), 3)
        # Pretend shard 1 has finished half its work.
        done = {cell.cell_id for cell in shards[1][:4]}
        order = list(steal_candidates(
            shards, 2, lambda cell: cell.cell_id not in done))
        # First candidate: tail cell of a full (8-pending) victim shard.
        full_victim = shards[0]
        assert order[0].cell_id == full_victim[-1].cell_id
        # The half-done victim's cells all come after the full victim's.
        positions = {cell.cell_id: index
                     for index, cell in enumerate(order)}
        assert max(positions[cell.cell_id] for cell in full_victim) < \
            min(positions[cell.cell_id] for cell in shards[1][4:])

    def test_own_shard_excluded(self):
        shards = build_shards(grid_cells(), 3)
        own = {cell.cell_id for cell in shards[0]}
        stolen = {cell.cell_id
                  for cell in steal_candidates(shards, 0, lambda cell: True)}
        assert not stolen & own

    def test_empty_when_nothing_remains(self):
        shards = build_shards(grid_cells(), 2)
        assert list(steal_candidates(shards, 0, lambda cell: False)) == []
