"""Fleet orchestration: end-to-end runs, crash/resume byte-identity."""

import json
import os
import threading
import time

import pytest

from repro.fleet import (
    FleetError,
    FleetQueue,
    FleetWorker,
    Recipe,
    collect_matrix,
    fleet_status,
    init_run,
    matrix_bytes,
    run_fleet,
)


def dead_pid():
    """A pid that provably does not exist right now."""
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    return pid

PAIR = Recipe(name="pair", kernels=["crc32"], pipeline_cap=20_000,
              axes={"width": [1, 2]})

GRID = Recipe(name="grid", kernels=["crc32", "sha"], pipeline_cap=20_000,
              axes={"width": [1, 2], "predictor": ["gap", "nottaken"]})


def result_snapshot(run_dir):
    """(bytes, mtime_ns) of every published result file."""
    results_dir = os.path.join(run_dir, "results")
    snapshot = {}
    for name in sorted(os.listdir(results_dir)):
        path = os.path.join(results_dir, name)
        with open(path, "rb") as handle:
            snapshot[name] = (handle.read(), os.stat(path).st_mtime_ns)
    return snapshot


class TestRun:
    def test_single_worker_completes_and_exports(self, tmp_path):
        run_dir = str(tmp_path / "run")
        summary = run_fleet(run_dir, PAIR)
        assert summary["complete"] is True
        assert summary["cells"] == summary["completed"] == 2
        assert summary["executed"] == 2 and summary["skipped"] == 0
        assert os.path.exists(os.path.join(run_dir, "matrix.json"))
        matrix = collect_matrix(run_dir)
        assert [row["config"] for row in matrix["cells"]] == \
            ["width=1", "width=2"]
        for row in matrix["cells"]:
            metrics = row["metrics"]
            assert metrics["instructions"] > 0
            assert metrics["cycles"] > 0
            assert metrics["power"] > 0

    def test_resume_skips_completed_byte_for_byte(self, tmp_path):
        run_dir = str(tmp_path / "run")
        run_fleet(run_dir, PAIR)
        before = result_snapshot(run_dir)
        matrix_before = open(os.path.join(run_dir, "matrix.json"),
                             "rb").read()
        summary = run_fleet(run_dir)  # recipe=None: the resume path
        assert summary["executed"] == 0
        assert summary["skipped"] == 2
        assert result_snapshot(run_dir) == before  # bytes AND mtimes
        assert open(os.path.join(run_dir, "matrix.json"),
                    "rb").read() == matrix_before

    def test_two_workers_match_one_worker_bytes(self, tmp_path):
        solo = str(tmp_path / "solo")
        duo = str(tmp_path / "duo")
        run_fleet(solo, GRID, workers=1)
        summary = run_fleet(duo, GRID, workers=2)
        assert summary["complete"] is True
        assert matrix_bytes(duo) == matrix_bytes(solo)

    def test_run_dir_bound_to_one_recipe(self, tmp_path):
        run_dir = str(tmp_path / "run")
        init_run(run_dir, PAIR)
        with pytest.raises(FleetError, match="refusing"):
            init_run(run_dir, GRID)

    def test_incomplete_matrix_refuses_collection(self, tmp_path):
        run_dir = str(tmp_path / "run")
        init_run(run_dir, PAIR)
        with pytest.raises(FleetError, match="incomplete"):
            collect_matrix(run_dir)

    def test_journal_lands_in_run_dir(self, tmp_path):
        run_dir = str(tmp_path / "run")
        run_fleet(run_dir, PAIR)
        events = []
        for name in os.listdir(run_dir):
            if name.startswith("journal-") and name.endswith(".jsonl"):
                with open(os.path.join(run_dir, name)) as handle:
                    events.extend(json.loads(line) for line in handle
                                  if line.strip())
        kinds = {event.get("event") for event in events
                 if event.get("kind") == "fleet"}
        assert {"run_begin", "claim", "complete", "run_end"} <= kinds
        assert any(event.get("kind") == "progress"
                   and event.get("unit") == "cells" for event in events)


class TestStatus:
    def test_fresh_dir_status(self, tmp_path):
        run_dir = str(tmp_path / "run")
        init_run(run_dir, PAIR)
        status = fleet_status(run_dir)
        assert status["cells"] == 2 and status["completed"] == 0
        assert status["pending"] == 2 and not status["complete"]
        assert status["matrix"] is False

    def test_complete_status_carries_worker_summaries(self, tmp_path):
        run_dir = str(tmp_path / "run")
        run_fleet(run_dir, PAIR)
        status = fleet_status(run_dir)
        assert status["complete"] is True and status["matrix"] is True
        assert status["leased"] == 0
        assert sum(worker["executed"]
                   for worker in status["workers"]) == 2

    def test_not_a_run_dir(self, tmp_path):
        with pytest.raises(FleetError, match="not a fleet run"):
            fleet_status(str(tmp_path / "nope"))


class TestCrashResume:
    """The acceptance scenario: SIGKILL a worker mid-cell, resume, and
    get a byte-identical matrix with completed cells skipped."""

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        reference = str(tmp_path / "reference")
        run_fleet(reference, GRID)

        run_dir = str(tmp_path / "chaotic")
        crashed = run_fleet(run_dir, GRID, workers=1, chaos="0:2")
        assert crashed["complete"] is False
        assert crashed["dead_workers"] == 1
        assert crashed["completed"] == 2  # chaos fired after 2 cells
        # The stranded mid-cell lease was reclaimed by the orchestrator.
        queue = FleetQueue(run_dir)
        assert queue.leased_ids() - queue.completed_ids() == set()

        survivors = result_snapshot(run_dir)
        resumed = run_fleet(run_dir)
        assert resumed["complete"] is True
        assert resumed["skipped"] == 2
        assert resumed["executed"] == 6
        # Surviving results were never rewritten (bytes and mtimes)...
        after = result_snapshot(run_dir)
        assert {name: after[name] for name in survivors} == survivors
        # ...no duplicates appeared...
        assert len(after) == 8
        # ...and the final matrix is byte-identical to the
        # never-interrupted reference run.
        assert matrix_bytes(run_dir) == matrix_bytes(reference)

    def test_sibling_reclaims_dead_workers_cell_live(self, tmp_path):
        reference = str(tmp_path / "reference")
        run_fleet(reference, GRID)

        run_dir = str(tmp_path / "chaotic")
        # Worker 0 dies mid-cell after 1 cell; worker 1 must pick up the
        # stranded lease (dead-pid fast path) and finish the whole
        # matrix in this single invocation.
        summary = run_fleet(run_dir, GRID, workers=2, chaos="0:1")
        assert summary["dead_workers"] == 1
        assert summary["complete"] is True
        assert matrix_bytes(run_dir) == matrix_bytes(reference)

    def test_reclaim_event_journaled(self, tmp_path):
        run_dir = str(tmp_path / "chaotic")
        run_fleet(run_dir, GRID, workers=2, chaos="0:1")
        events = []
        for name in os.listdir(run_dir):
            if name.startswith("journal-") and name.endswith(".jsonl"):
                with open(os.path.join(run_dir, name)) as handle:
                    events.extend(json.loads(line) for line in handle
                                  if line.strip())
        reclaims = [event for event in events
                    if event.get("kind") == "fleet"
                    and event.get("event") == "reclaim"]
        assert reclaims
        assert any(event.get("reason") == "dead_pid"
                   for event in reclaims)

    def test_dead_thief_own_shard_lease_recovered(self, tmp_path):
        """Regression: a dead thief's lease on an own-shard cell must be
        re-run by the shard owner, not livelock the poll loop (thieves
        never steal from their own shard, so after the reclaim the
        owner can be the only worker able to claim it)."""
        run_dir = str(tmp_path / "run")
        init_run(run_dir, PAIR)
        worker = FleetWorker(run_dir, 0, 1)
        target = worker.shards[0][0]
        record = {"worker": "thief", "pid": dead_pid(),
                  "host": worker.queue.host, "ts": 9_999_999_999.0}
        with open(worker.queue.lease_path(target.cell_id), "w") as fh:
            json.dump(record, fh)
        done = {}
        thread = threading.Thread(
            target=lambda: done.setdefault("summary", worker.run()),
            daemon=True)
        thread.start()
        thread.join(timeout=120)
        assert "summary" in done, "worker livelocked on own-shard cell"
        assert done["summary"]["executed"] == 2
        assert FleetQueue(run_dir).completed_ids() == \
            {cell.cell_id for cell in worker.cells}


class TestHeartbeat:
    def test_lease_refreshed_while_cell_runs(self, tmp_path):
        run_dir = str(tmp_path / "run")
        init_run(run_dir, PAIR)
        worker = FleetWorker(run_dir, 0, 1, lease_ttl=0.2)
        cell = worker.shards[0][0]
        assert worker.queue.claim(cell.cell_id, worker.worker_id)
        before = worker.queue.lease_info(cell.cell_id)["ts"]
        with worker._heartbeating(cell.cell_id):
            time.sleep(0.5)
        assert worker.queue.lease_info(cell.cell_id)["ts"] > before
        worker.queue.release(cell.cell_id)

    def test_slow_cells_never_expiry_stolen_from_live_workers(
            self, tmp_path):
        """With a TTL far below cell runtime, live same-host leases must
        survive (no 'expired' reclaims, no duplicated execution)."""
        run_dir = str(tmp_path / "run")
        summary = run_fleet(run_dir, GRID, workers=2, lease_ttl=0.01)
        assert summary["complete"] is True
        status = fleet_status(run_dir)
        assert sum(worker["executed"]
                   for worker in status["workers"]) == 8
        events = []
        for name in os.listdir(run_dir):
            if name.startswith("journal-") and name.endswith(".jsonl"):
                with open(os.path.join(run_dir, name)) as handle:
                    events.extend(json.loads(line) for line in handle
                                  if line.strip())
        assert not any(event.get("event") == "reclaim"
                       and event.get("reason") == "expired"
                       for event in events
                       if event.get("kind") == "fleet")
