"""Equivalence tests: ``simulate_cache_sweep`` vs per-config
``simulate_cache`` on random and adversarial streams.

The batched sweep must be *bit-identical* to the reference replay for
every geometry class it dispatches to — vectorized direct-mapped,
vectorized 2-way, and the shared-stream LRU replay — because every
experiment's Pearson correlations and rankings are computed from its
miss counts.
"""

import numpy as np
import pytest

from repro.uarch import (
    CACHE_SWEEP,
    CacheConfig,
    simulate_cache,
    simulate_cache_sweep,
)

RNG = np.random.default_rng(0xC0FFEE)


def stats_tuple(stats):
    return (stats.accesses, stats.misses, stats.evictions)


def assert_equivalent(addresses, configs):
    batched = simulate_cache_sweep(addresses, configs)
    assert len(batched) == len(configs)
    for config, stats in zip(configs, batched):
        reference = simulate_cache(addresses, config)
        assert stats_tuple(stats) == stats_tuple(reference), config


# One config per dispatch path, plus awkward geometries.
PATH_CONFIGS = [
    CacheConfig(256, 1, 32),        # vectorized direct-mapped
    CacheConfig(1024, 2, 32),       # vectorized 2-way
    CacheConfig(2048, 4, 32),       # replay (4-way)
    CacheConfig(512, "full", 32),   # replay (fully associative)
    CacheConfig(96, 3, 32),         # replay (non-power-of-two ways)
    CacheConfig(1024, 2, 64),       # second line size in one sweep
    CacheConfig(64, 2, 32),         # single set, 2-way
    CacheConfig(32, 1, 32),         # single line
]


class TestEquivalence:
    def test_random_stream(self):
        addresses = RNG.integers(0, 1 << 20, 20_000)
        assert_equivalent(addresses, PATH_CONFIGS)

    def test_random_stream_full_sweep(self):
        addresses = RNG.integers(0, 1 << 18, 10_000)
        assert_equivalent(addresses, CACHE_SWEEP)

    def test_sequential_stream(self):
        assert_equivalent(np.arange(20_000) * 4, PATH_CONFIGS)

    def test_conflict_thrash(self):
        # Addresses landing in the same set of every sweep geometry:
        # 16KB-apart strides thrash direct-mapped caches mercilessly.
        addresses = np.tile(np.arange(8) * 16384, 1000)
        assert_equivalent(addresses, PATH_CONFIGS)

    def test_lru_adversary(self):
        # Cyclic re-reference of capacity+1 blocks: worst case for LRU,
        # the classic sequence where every access misses.
        addresses = np.tile(np.arange(33) * 32, 300)
        assert_equivalent(addresses, PATH_CONFIGS)

    def test_consecutive_duplicates(self):
        # Exercises the dedup fast path feeding the replay configs.
        addresses = np.repeat(RNG.integers(0, 1 << 14, 1_000), 9)
        assert_equivalent(addresses, PATH_CONFIGS)

    def test_single_block_stream(self):
        assert_equivalent(np.zeros(500, dtype=np.int64), PATH_CONFIGS)

    def test_mixed_locality(self):
        addresses = np.concatenate([
            RNG.integers(0, 4096, 3_000),
            np.arange(0, 65536, 4),
            np.tile(np.arange(4) * 8192, 500),
            RNG.integers(0, 1 << 24, 2_000),
        ])
        assert_equivalent(addresses, PATH_CONFIGS)


class TestEdgeCases:
    def test_empty_stream(self):
        batched = simulate_cache_sweep(np.array([], dtype=np.int64),
                                       PATH_CONFIGS)
        for stats in batched:
            assert stats_tuple(stats) == (0, 0, 0)

    def test_empty_configs(self):
        assert simulate_cache_sweep(np.arange(10), []) == []

    def test_list_input(self):
        addresses = [0, 32, 64, 0, 32, 96, 0]
        assert_equivalent(addresses, PATH_CONFIGS)

    def test_single_access(self):
        for config, stats in zip(
                PATH_CONFIGS, simulate_cache_sweep([1024], PATH_CONFIGS)):
            assert stats_tuple(stats) == (1, 1, 0), config

    def test_results_in_config_order(self):
        addresses = RNG.integers(0, 1 << 16, 2_000)
        forward = simulate_cache_sweep(addresses, PATH_CONFIGS)
        backward = simulate_cache_sweep(addresses, PATH_CONFIGS[::-1])
        assert ([stats_tuple(s) for s in forward]
                == [stats_tuple(s) for s in backward[::-1]])

    def test_input_array_not_mutated(self):
        addresses = RNG.integers(0, 1 << 16, 1_000)
        copy = addresses.copy()
        simulate_cache_sweep(addresses, PATH_CONFIGS)
        simulate_cache(addresses, PATH_CONFIGS[0])
        assert np.array_equal(addresses, copy)


@pytest.mark.parametrize("assoc", [1, 2, 4, "full"])
def test_every_sweep_associativity_on_real_trace_shape(assoc):
    # A loop-nest-like stream: strided lines with periodic resets.
    base = np.arange(0, 8192, 4)
    addresses = np.concatenate([base, base, base + 4096, base])
    configs = [CacheConfig(size, assoc, 32)
               for size in (256, 1024, 4096, 16384)]
    assert_equivalent(addresses, configs)
