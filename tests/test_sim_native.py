"""Tests for the C-compiled native functional engine and its streaming
consumers: translation gating, engine caching, chunked emission, and
chunked-vs-materialized digest/profile parity.

Differential interp-vs-native execution equivalence (traces, registers,
memory, errors, heartbeats) lives in ``test_sim_turbo.py``, which
parametrizes the whole suite over every backend.
"""

import numpy as np
import pytest

from repro.core.profiler import (
    ChunkedWorkloadProfiler,
    WorkloadProfiler,
    profile_program,
)
from repro.isa import assemble
from repro.native import toolchain
from repro.sim import native
from repro.sim.functional import FunctionalSimulator, run_program
from repro.sim.trace import TraceRef
from repro.uarch import BASE_CONFIG
from repro.uarch.sweep import (
    StreamingDigestBuilder,
    acquire_trace_digest,
    simulate_pipeline_sweep,
    trace_digest,
)
from repro.workloads import build_workload

needs_native = pytest.mark.skipif(not native.available(),
                                  reason="no working C toolchain")

LOOP_SOURCE = """
    .text
    li r5, 200
    li r6, 0
loop:
    addi r6, r6, 3
    addi r5, r5, -1
    bne r5, r0, loop
    halt
"""


def loop_program():
    return assemble(LOOP_SOURCE, name="native-loop")


class TestTranslationGate:
    def test_corpus_kernel_translatable(self):
        assert native.translatable(build_workload("fft"))

    def test_gate_result_cached_on_columns(self):
        program = loop_program()
        assert native.translatable(program)
        from repro.isa.columns import columns_for
        assert columns_for(program).derived["native_sim_ok"] is True

    def test_static_size_gate(self, monkeypatch):
        monkeypatch.setattr(native, "MAX_STATIC", 3)
        assert not native._translatable(loop_program())

    def test_fp_register_as_int_operand_rejected(self):
        # Hand-built addi whose source is an FP register: no C template
        # exists for the mixed-file form, so the program is rejected.
        from repro.isa import Instruction, Program
        program = Program(
            [Instruction("addi", rd=5, rs1=40, imm=1),
             Instruction("halt")], name="mixed-files")
        assert not native._translatable(program)


@needs_native
class TestGeneratedSource:
    def test_deterministic(self):
        program = loop_program()
        assert native.generate_source(program) \
            == native.generate_source(program)

    def test_shape(self):
        source = native.generate_source(loop_program())
        assert "int64_t repro_sim_run" in source
        assert "dispatch:" in source
        # One dispatch case and one body label per static instruction.
        n = len(loop_program().instructions)
        for pc in range(n):
            assert f"case {pc}: goto I{pc};" in source
            assert f"I{pc}:" in source


@needs_native
class TestEngineCache:
    def test_engine_cached_per_program(self):
        program = loop_program()
        first = native.engine_for(program)
        assert first is not None
        assert native.engine_for(program) is first

    def test_gated_off_means_no_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.reset()
        try:
            assert not native.available()
            assert native.engine_for(loop_program()) is None
        finally:
            native.reset()


@needs_native
class TestStreaming:
    def test_chunked_stream_concatenates_to_run_trace(self):
        program = build_workload("adpcm")
        reference = run_program(program, backend="interp")
        chunks = []
        simulator = FunctionalSimulator(program, backend="native")
        executed = native.stream_trace(
            simulator, 5_000_000,
            lambda pcs, addrs, taken: chunks.append(
                (pcs.copy(), addrs.copy(), taken.copy())),
            chunk_events=997)
        assert executed == len(reference)
        assert len(chunks) > 1  # the chunk size actually chunked
        assert all(len(pcs) <= 997 for pcs, _, _ in chunks)
        np.testing.assert_array_equal(
            np.concatenate([pcs for pcs, _, _ in chunks]), reference.pcs)
        np.testing.assert_array_equal(
            np.concatenate([addrs for _, addrs, _ in chunks]),
            reference.addrs)
        np.testing.assert_array_equal(
            np.concatenate([taken for _, _, taken in chunks]),
            reference.taken)

    def test_streamed_digest_matches_materialized(self):
        program = build_workload("qsort")
        trace = run_program(program, backend="interp")
        reference = trace_digest(trace, store=None)
        builder = StreamingDigestBuilder(program)
        step = 1013
        for start in range(0, len(trace), step):
            builder.feed(trace.pcs[start:start + step],
                         trace.addrs[start:start + step],
                         trace.taken[start:start + step])
        streamed = builder.finish()
        assert isinstance(streamed.trace, TraceRef)
        assert streamed.trace.content_digest() == trace.content_digest()
        for name in ("b_pos", "b_pcs", "b_taken", "m_pos", "m_addrs",
                     "pcs", "visit_starts", "visit_blocks"):
            np.testing.assert_array_equal(getattr(streamed, name),
                                          getattr(reference, name),
                                          err_msg=name)
        assert streamed.masks_agree == reference.masks_agree
        assert streamed.blocks_ok == reference.blocks_ok

    def test_acquired_digest_times_identically(self):
        program = build_workload("crc32")
        trace = run_program(program, backend="interp")
        [reference] = simulate_pipeline_sweep(trace, [BASE_CONFIG])
        digest = acquire_trace_digest(program)
        assert isinstance(digest.trace, TraceRef)
        [result] = simulate_pipeline_sweep(digest.trace, [BASE_CONFIG])
        expected = dict(vars(reference))
        got = dict(vars(result))
        expected.pop("wall_seconds", None)
        got.pop("wall_seconds", None)
        assert got == expected

    def test_profile_program_streams_and_matches(self):
        program = build_workload("susan")
        trace = run_program(program, backend="interp")
        reference = WorkloadProfiler().profile(trace)
        streamed = profile_program(program)
        assert streamed.to_dict() == reference.to_dict()


class TestChunkedProfilerUnit:
    def test_rejects_mid_block_start(self, loop_nest_trace):
        profiler = ChunkedWorkloadProfiler(loop_nest_trace.program)
        with pytest.raises(ValueError, match="block leader"):
            profiler.feed(loop_nest_trace.pcs[1:],
                          loop_nest_trace.addrs[1:],
                          loop_nest_trace.taken[1:])

    @pytest.mark.parametrize("step", [1, 7, 97, 10_000_000])
    def test_chunked_equals_one_pass(self, loop_nest_trace, step):
        reference = WorkloadProfiler().profile(loop_nest_trace)
        profiler = ChunkedWorkloadProfiler(loop_nest_trace.program)
        for start in range(0, len(loop_nest_trace), step):
            profiler.feed(loop_nest_trace.pcs[start:start + step],
                          loop_nest_trace.addrs[start:start + step],
                          loop_nest_trace.taken[start:start + step])
        assert profiler.finish().to_dict() == reference.to_dict()
