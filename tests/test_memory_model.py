"""Tests for the stream-cluster memory model (paper Sec. 3.1.4 / step 11)."""

import pytest

from repro.core.memory_model import MIN_RESET, StreamPlan
from repro.core.profile import MemOpStats, WorkloadProfile


def make_profile(mem_ops, footprint=4096):
    profile = WorkloadProfile(name="synthetic", total_instructions=10_000,
                              total_memory_ops=sum(m.count for m in mem_ops),
                              total_branches=100)
    profile.mem_ops = {m.pc: m for m in mem_ops}
    profile.data_footprint_bytes = footprint
    return profile


def op(pc, stride, count=200, coverage=1.0, length=32.0, footprint=512,
       first=0x100000, store=False, local=1.0):
    return MemOpStats(pc=pc, is_store=store, count=count,
                      dominant_stride=stride, coverage=coverage,
                      mean_stream_length=length, distinct_strides=1,
                      footprint_bytes=footprint, first_address=first,
                      last_address=first + footprint - 4,
                      local_fraction=local)


class TestClustering:
    def test_ops_grouped_by_stride(self):
        plan = StreamPlan(make_profile([op(1, 4), op(2, 4), op(3, 8,
                                                              first=0x200000)]))
        strides = sorted(cluster.stride for cluster in plan.clusters)
        assert strides == [4, 8]

    def test_cluster_count_capped(self):
        ops = [op(i, 4 * (i + 1), first=0x100000 + 0x10000 * i)
               for i in range(12)]
        plan = StreamPlan(make_profile(ops), max_clusters=4)
        assert len(plan.clusters) <= 4
        # every op still routed somewhere
        for memop in ops:
            handle = plan.allocate(memop.pc)
            assert handle[0] < len(plan.clusters)

    def test_empty_profile_gets_default_cluster(self):
        plan = StreamPlan(make_profile([]))
        assert plan.clusters
        plan.finalize()

    def test_scatter_detection(self):
        lookup = op(1, -216, coverage=0.3, footprint=1024, local=0.05)
        plan = StreamPlan(make_profile([lookup]))
        cluster = plan.clusters[plan.allocate(1)[0]]
        assert cluster.stride == StreamPlan.SCATTER_STRIDE

    def test_local_scatter_uses_dense_stride(self):
        window = op(1, 71, coverage=0.3, footprint=2048, local=0.5)
        plan = StreamPlan(make_profile([window]))
        cluster = plan.clusters[plan.allocate(1)[0]]
        assert cluster.stride == 4

    def test_sweep_once_classification(self):
        streaming = op(1, 4, count=1000, footprint=4000, length=999.0)
        looping = op(2, 4, count=1000, footprint=256, length=64.0,
                     first=0x200000)
        plan = StreamPlan(make_profile([streaming, looping]))
        once = plan.clusters[plan.allocate(1)[0]]
        loop = plan.clusters[plan.allocate(2)[0]]
        assert once.sweep_once and not loop.sweep_once


class TestRegions:
    def test_overlapping_ops_share_a_region(self):
        # Neighbourhood taps over one image: starts within 128B.
        taps = [op(i, 1, count=3000, footprint=3000, length=70.0,
                   first=0x100000 + 48 * i) for i in range(3)]
        plan = StreamPlan(make_profile(taps))
        regions = {plan.allocate(i)[1] for i in range(3)}
        assert len(regions) == 1

    def test_distant_ops_get_distinct_regions(self):
        a = op(1, 4, first=0x100000)
        b = op(2, 4, first=0x108000)
        plan = StreamPlan(make_profile([a, b]))
        assert plan.allocate(1)[1] != plan.allocate(2)[1]

    def test_relative_offsets_preserved(self):
        a = op(1, 1, count=3000, footprint=3000, length=70.0,
               first=0x100000)
        b = op(2, 1, count=3000, footprint=3000, length=70.0,
               first=0x100048)  # 72 bytes into the same image
        plan = StreamPlan(make_profile([a, b], footprint=6000))
        handle_a = plan.allocate(1)
        handle_b = plan.allocate(2)
        plan.finalize()
        _, offset_a = plan.locate(handle_a)
        _, offset_b = plan.locate(handle_b)
        assert offset_b - offset_a == 72


class TestLayout:
    def test_footprint_tracks_target(self):
        ops = [op(i, 4, count=400, footprint=2048, length=64.0,
                  first=0x100000 + 0x1000 * i) for i in range(4)]
        profile = make_profile(ops, footprint=8192)
        plan = StreamPlan(profile)
        for i in range(4):
            for _ in range(5):
                plan.allocate(i)
        plan.finalize()
        total = plan.total_footprint()
        assert 0.25 * 8192 <= total <= 4 * 8192

    def test_footprint_scale_knob(self):
        def build(scale):
            # A looping op (footprint well below stride*count), so the
            # alpha solve — which the scale knob feeds — applies.
            ops = [op(1, 4, count=4000, footprint=4096, length=64.0)]
            plan = StreamPlan(make_profile(ops, footprint=4096),
                              footprint_scale=scale)
            for _ in range(6):
                plan.allocate(1)
            plan.finalize()
            return plan.total_footprint()
        assert build(4.0) > build(1.0) > build(0.25)

    def test_offsets_within_region(self):
        ops = [op(1, 4), op(2, -8, first=0x200000)]
        plan = StreamPlan(make_profile(ops))
        handles = [plan.allocate(1) for _ in range(8)]
        handles += [plan.allocate(2) for _ in range(8)]
        plan.finalize()
        for handle in handles:
            cluster_index, offset = plan.locate(handle)
            cluster = plan.clusters[cluster_index]
            assert 0 <= offset < cluster.region
            # Worst case over the whole walk must stay in-region.
            walk_min = offset + min(0, cluster.advance
                                    * (cluster.reset_period - 1))
            walk_max = offset + max(0, cluster.advance
                                    * (cluster.reset_period - 1)) + 8
            assert walk_min >= 0
            assert walk_max <= cluster.region

    def test_reset_period_bounds(self):
        ops = [op(1, 4), op(2, 0, first=0x200000, footprint=4)]
        plan = StreamPlan(make_profile(ops))
        plan.allocate(1)
        plan.allocate(2)
        plan.finalize()
        for cluster in plan.active_clusters():
            assert cluster.reset_period >= MIN_RESET

    def test_instance_addresses_advance_by_stride(self):
        plan = StreamPlan(make_profile([op(1, 4, footprint=4096)]))
        first = plan.allocate(1)
        second = plan.allocate(1)
        plan.finalize()
        _, offset_a = plan.locate(first)
        _, offset_b = plan.locate(second)
        assert offset_b - offset_a == 4

    def test_loop_instances_wrap_at_footprint(self):
        small = op(1, 4, count=500, footprint=32, length=8.0)
        plan = StreamPlan(make_profile([small], footprint=64))
        handles = [plan.allocate(1) for _ in range(20)]
        plan.finalize()
        offsets = {plan.locate(handle)[1] for handle in handles}
        # Bounded by the op's footprint (floored at 64 bytes), never the
        # 20 * stride = 80 bytes unconstrained instances would span.
        assert max(offsets) - min(offsets) <= 64

    def test_data_directives_cover_regions(self):
        plan = StreamPlan(make_profile([op(1, 4)]))
        plan.allocate(1)
        plan.finalize()
        lines = plan.data_directives()
        assert any(".space" in line for line in lines)
        assert any("stream_0:" in line for line in lines)

    def test_sweep_once_tiles_seamlessly(self):
        streaming = op(1, 4, count=1000, footprint=4000, length=999.0)
        plan = StreamPlan(make_profile([streaming], footprint=4000))
        handles = [plan.allocate(1) for _ in range(10)]
        plan.finalize()
        cluster = plan.clusters[handles[0][0]]
        offsets = sorted(plan.locate(handle)[1] for handle in handles)
        # Ten instances spread across one advance window.
        assert offsets[-1] - offsets[0] == pytest.approx(
            cluster.advance * 9 / 10, abs=abs(cluster.advance) / 10 + 1)
