"""Unit tests for the flat register index space."""

import pytest

from repro.isa.registers import (
    FP_REG_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    ZERO_REG,
    fp_reg,
    int_reg,
    is_fp_reg,
    parse_reg,
    reg_name,
)


class TestIndexing:
    def test_int_reg_identity(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31

    def test_fp_reg_offset(self):
        assert fp_reg(0) == FP_REG_BASE
        assert fp_reg(31) == FP_REG_BASE + 31

    def test_zero_reg_is_int_zero(self):
        assert ZERO_REG == int_reg(0)

    def test_counts_consistent(self):
        assert NUM_REGS == NUM_INT_REGS + NUM_FP_REGS

    def test_int_reg_out_of_range(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            int_reg(-1)

    def test_fp_reg_out_of_range(self):
        with pytest.raises(ValueError):
            fp_reg(32)


class TestClassification:
    def test_is_fp_reg(self):
        assert not is_fp_reg(0)
        assert not is_fp_reg(31)
        assert is_fp_reg(32)
        assert is_fp_reg(63)


class TestNames:
    def test_reg_name_int(self):
        assert reg_name(0) == "r0"
        assert reg_name(17) == "r17"

    def test_reg_name_fp(self):
        assert reg_name(FP_REG_BASE) == "f0"
        assert reg_name(FP_REG_BASE + 5) == "f5"

    def test_reg_name_out_of_range(self):
        with pytest.raises(ValueError):
            reg_name(64)
        with pytest.raises(ValueError):
            reg_name(-1)

    def test_parse_round_trip(self):
        for index in range(NUM_REGS):
            assert parse_reg(reg_name(index)) == index

    def test_parse_whitespace_and_case(self):
        assert parse_reg(" R7 ") == 7
        assert parse_reg("F3") == FP_REG_BASE + 3

    @pytest.mark.parametrize("bad", ["x5", "r", "f", "r32", "f99", "7", ""])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)
