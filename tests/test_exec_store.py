"""Persistent artifact store: round-trip determinism, keying, eviction."""

import json
import os

import numpy as np
import pytest

from repro.core.synthesizer import SynthesisParameters
from repro.exec import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactStore,
    artifact_key,
    pipeline_artifacts,
)
from repro.exec.store import META_FILENAME
from repro.workloads import get_workload

PARAMS = SynthesisParameters(dynamic_instructions=30_000)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=str(tmp_path / "cache"), enabled=True)


def build(store, name="crc32", parameters=PARAMS, max_instructions=500_000):
    source = get_workload(name).source()
    return pipeline_artifacts(name, source, parameters,
                              max_instructions=max_instructions,
                              store=store)


class TestKeying:
    def test_stable(self):
        assert artifact_key("x", "src", PARAMS, 10) \
            == artifact_key("x", "src", PARAMS, 10)

    @pytest.mark.parametrize("other", [
        ("y", "src", PARAMS, 10),          # name
        ("x", "src2", PARAMS, 10),         # source (incl. data image)
        ("x", "src", SynthesisParameters(seed=7), 10),  # parameters
        ("x", "src", PARAMS, 11),          # functional cap
    ])
    def test_any_input_changes_key(self, other):
        assert artifact_key("x", "src", PARAMS, 10) != artifact_key(*other)

    def test_sim_backend_changes_key(self):
        # Mixed-backend runs may never alias in the cache.
        assert artifact_key("x", "src", PARAMS, 10, sim_backend="turbo") \
            != artifact_key("x", "src", PARAMS, 10, sim_backend="interp")

    def test_key_is_filesystem_safe(self):
        key = artifact_key("weird/name with spaces!", "s", PARAMS, 1)
        assert "/" not in key and " " not in key


class TestRoundTrip:
    def test_fresh_vs_cached_identical(self, store):
        cold = build(store)
        assert store.stats()["writes"] == 1
        warm = build(store)
        assert store.stats()["hits"] == 1
        # Identical profiles, clone assembly, and trace arrays.
        assert cold.profile.to_dict() == warm.profile.to_dict()
        assert cold.clone.asm_source == warm.clone.asm_source
        assert cold.clone.stats == warm.clone.stats
        assert cold.clone.program.name == warm.clone.program.name
        for attr in ("pcs", "addrs", "taken"):
            assert np.array_equal(getattr(cold.trace, attr),
                                  getattr(warm.trace, attr))
            assert np.array_equal(getattr(cold.clone_trace, attr),
                                  getattr(warm.clone_trace, attr))

    def test_sim_backend_recorded_and_round_tripped(self, store):
        cold = build(store)
        assert cold.sim_backend in ("native", "turbo", "interp")
        warm = build(store)
        assert store.stats()["hits"] == 1
        assert warm.sim_backend == cold.sim_backend

    def test_cached_clone_program_reassembles_identically(self, store):
        cold = build(store)
        warm = build(store)
        cold_instrs = [repr(i) for i in cold.clone.program.instructions]
        warm_instrs = [repr(i) for i in warm.clone.program.instructions]
        assert cold_instrs == warm_instrs
        assert cold.clone.program.data_image == warm.clone.program.data_image

    def test_different_parameters_miss(self, store):
        build(store)
        build(store, parameters=SynthesisParameters(
            dynamic_instructions=30_000, seed=99))
        assert store.stats()["writes"] == 2
        assert store.stats()["hits"] == 0

    def test_disabled_store_always_builds(self, tmp_path):
        disabled = ArtifactStore(root=str(tmp_path), enabled=False)
        build(disabled)
        build(disabled)
        stats = disabled.stats()
        assert stats["writes"] == 0 and stats["hits"] == 0
        assert disabled.entries() == []


class TestValidation:
    def test_corrupt_meta_treated_as_miss_and_rebuilt(self, store):
        build(store)
        (key, _, _), = store.entries()
        meta_path = os.path.join(store.entry_dir(key), META_FILENAME)
        with open(meta_path, "w") as handle:
            handle.write("{not json")
        build(store)
        assert store.stats()["writes"] == 2

    def test_schema_mismatch_is_miss(self, store):
        build(store)
        (key, _, _), = store.entries()
        meta_path = os.path.join(store.entry_dir(key), META_FILENAME)
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        build(store)
        assert store.stats()["writes"] == 2

    def test_missing_file_is_miss(self, store):
        build(store)
        (key, _, _), = store.entries()
        os.remove(os.path.join(store.entry_dir(key), "trace.npz"))
        assert store.load(key) is None


class TestEviction:
    def test_prune_removes_lru_first(self, store):
        build(store, name="crc32")
        build(store, name="sha")
        entries = store.entries()
        assert len(entries) == 2
        # Touch the newer entry so the older one stays least recent.
        oldest_key = entries[0][0]
        os.utime(store.entry_dir(entries[1][0]))
        evicted = store.prune(max_bytes=entries[1][2])
        assert oldest_key in evicted
        assert len(store.entries()) == 1
        assert store.stats()["evictions"] == len(evicted)

    def test_prune_noop_when_under_limit(self, store):
        build(store)
        assert store.prune(max_bytes=store.total_bytes() + 1) == []

    def test_clear(self, store):
        build(store)
        store.clear()
        assert store.entries() == []

    def test_max_bytes_autoprunes_on_write(self, tmp_path):
        bounded = ArtifactStore(root=str(tmp_path / "b"), enabled=True,
                                max_bytes=1)
        build(bounded, name="crc32")
        # The just-written entry itself exceeds the bound and is evicted.
        assert bounded.entries() == []
        assert bounded.stats()["evictions"] >= 1

    def test_eviction_telemetry_counters_and_bytes(self, store):
        from repro.obs.metrics import REGISTRY
        build(store, name="crc32")
        entries_before = REGISTRY.counter(
            "exec.store.evicted_entries").value
        bytes_before = REGISTRY.counter("exec.store.evicted_bytes").value
        evicted = store.prune(max_bytes=0)
        assert evicted
        assert store.evicted_bytes > 0
        assert store.stats()["evicted_bytes"] == store.evicted_bytes
        assert REGISTRY.counter("exec.store.evicted_entries").value \
            == entries_before + len(evicted)
        assert REGISTRY.counter("exec.store.evicted_bytes").value \
            == bytes_before + store.evicted_bytes

    def test_eviction_emits_journal_event(self, store, tmp_path):
        from repro.obs.journal import configure_journal, read_journal
        build(store, name="crc32")
        run_dir = str(tmp_path / "journal")
        configure_journal(run_dir)
        try:
            evicted = store.prune(max_bytes=0)
        finally:
            configure_journal(None)
        events = [event for event in read_journal(run_dir).events
                  if event["kind"] == "store"
                  and event.get("event") == "eviction"]
        assert len(events) == len(evicted)
        assert {event["key"] for event in events} == set(evicted)
        assert all(event["bytes"] > 0 for event in events)


class TestCounters:
    def test_reset(self, store):
        build(store)
        build(store)
        store.reset_counters()
        assert store.stats()["hits"] == 0
        assert store.stats()["writes"] == 0
