"""Profile-conformance lint (CF2xx): clean clones pass, perturbed fail.

Each perturbation test takes the session's ``loop_nest_clone``, edits
one aspect of its assembly (or stats) the way a buggy synthesizer
would, reassembles, and asserts that exactly the matching conformance
code fires.
"""

import dataclasses

import pytest

from repro.core.branch_model import BranchPattern
from repro.core.synthesizer import CloneResult
from repro.isa import assemble
from repro.lint import (
    ConformanceTolerances,
    check_conformance,
    discover_shape,
    lint_clone,
    recover_pattern,
)
from repro.lint.diagnostics import LintReport


def reassembled(clone, source, parameters=None, profile=None, stats=None):
    """A CloneResult around edited assembly (same provenance)."""
    program = assemble(source, name=clone.program.name)
    return CloneResult(program=program, asm_source=source,
                       profile=profile if profile is not None
                       else clone.profile,
                       parameters=parameters or clone.parameters,
                       stats=clone.stats if stats is None else stats)


def perturbed(clone, old, new, count=1):
    source = clone.asm_source.replace(old, new, count)
    assert source != clone.asm_source, f"pattern {old!r} not found"
    return reassembled(clone, source)


# ----------------------------------------------------------------------
# Clean clones conform
# ----------------------------------------------------------------------
def test_unmodified_clone_is_clean(loop_nest_clone):
    report = check_conformance(loop_nest_clone)
    assert report.ok
    assert len(report) == 0


def test_lint_clone_end_to_end(loop_nest_clone):
    report = lint_clone(loop_nest_clone)
    assert report.ok
    assert report.summary()["errors"] == 0


def test_shape_recovery(loop_nest_clone):
    report = LintReport("x")
    shape = discover_shape(loop_nest_clone.program, report)
    assert report.ok and shape is not None
    assert shape.n_blocks == len(loop_nest_clone.stats["sequence"])
    assert shape.loop_start < shape.tail_start <= shape.backedge
    # the steady-state body covers the loop but skips reset paths
    assert shape.body[0] == shape.loop_start
    assert shape.body[-1] == shape.backedge


def test_recover_pattern_roundtrip(loop_nest_clone):
    shape_report = LintReport("x")
    shape = discover_shape(loop_nest_clone.program, shape_report)
    recovered = [recover_pattern(loop_nest_clone.program, k)
                 for k in range(shape.n_blocks)]
    assert all(pattern is None or isinstance(pattern, BranchPattern)
               for pattern in recovered)
    assert any(isinstance(pattern, BranchPattern) for pattern in recovered)


# ----------------------------------------------------------------------
# CF200: shape
# ----------------------------------------------------------------------
def test_non_clone_program_reports_cf200(loop_nest_program, loop_nest_clone):
    impostor = CloneResult(program=loop_nest_program,
                           asm_source="", profile=loop_nest_clone.profile,
                           parameters=loop_nest_clone.parameters, stats={})
    report = check_conformance(impostor)
    assert report.codes().get("CF200") == 1
    assert not report.ok


# ----------------------------------------------------------------------
# CF201: instruction mix
# ----------------------------------------------------------------------
def test_swapped_opcode_class_reports_cf201(loop_nest_clone):
    # One body add becomes a mul: the per-block static histogram no
    # longer matches the profiled mix for that block.
    broken = perturbed(loop_nest_clone, "\n    add ", "\n    mul ")
    report = check_conformance(broken)
    assert "CF201" in report.codes()
    assert not report.ok


# ----------------------------------------------------------------------
# CF202: dependency distances
# ----------------------------------------------------------------------
def test_perturbed_dep_histogram_reports_cf202(loop_nest_clone):
    profile = loop_nest_clone.profile
    # push all profiled dependency mass into the farthest bucket
    hist = [0] * len(profile.global_dep_hist)
    hist[-1] = 10_000
    skewed = dataclasses.replace(profile, global_dep_hist=hist)
    broken = CloneResult(program=loop_nest_clone.program,
                         asm_source=loop_nest_clone.asm_source,
                         profile=skewed,
                         parameters=loop_nest_clone.parameters,
                         stats=loop_nest_clone.stats)
    report = check_conformance(broken)
    assert "CF202" in report.codes()
    # warning severity: divergence is reported but does not gate
    assert report.ok


# ----------------------------------------------------------------------
# CF203: branch machinery
# ----------------------------------------------------------------------
def test_inverted_branch_reports_cf203(loop_nest_clone):
    broken = perturbed(loop_nest_clone, "    beq r0, r0, ",
                       "    bne r0, r0, ")
    report = check_conformance(broken)
    assert "CF203" in report.codes()
    assert not report.ok


# ----------------------------------------------------------------------
# CF204: stream advances
# ----------------------------------------------------------------------
def test_wrong_pointer_advance_reports_cf204(loop_nest_clone):
    clusters = [cluster for cluster in loop_nest_clone.stats["clusters"]
                if "index" in cluster and "advance" in cluster]
    assert clusters, "clone stats must declare stream clusters"
    cluster = clusters[0]
    pointer = 4 + cluster["index"]
    old = f"addi r{pointer}, r{pointer}, {cluster['advance']}"
    new = f"addi r{pointer}, r{pointer}, {cluster['advance'] + 32}"
    broken = perturbed(loop_nest_clone, old, new)
    report = check_conformance(broken)
    assert "CF204" in report.codes()
    assert not report.ok


# ----------------------------------------------------------------------
# CF205: footprint
# ----------------------------------------------------------------------
def test_footprint_mismatch_reports_cf205(loop_nest_clone):
    inflated = dataclasses.replace(loop_nest_clone.parameters,
                                   footprint_scale=1000.0)
    broken = CloneResult(program=loop_nest_clone.program,
                         asm_source=loop_nest_clone.asm_source,
                         profile=loop_nest_clone.profile,
                         parameters=inflated,
                         stats=loop_nest_clone.stats)
    report = check_conformance(broken)
    assert "CF205" in report.codes()
    assert not report.ok


# ----------------------------------------------------------------------
# Tolerances
# ----------------------------------------------------------------------
def test_zero_tolerances_fail_a_real_clone(loop_nest_clone):
    impossible = ConformanceTolerances(
        memory_fraction=0.0, branch_fraction=0.0, compute_fraction=0.0,
        dep_tvd=0.0, taken_rate=0.0,
        footprint_ratio_low=0.999, footprint_ratio_high=1.001)
    report = check_conformance(loop_nest_clone, tolerances=impossible)
    assert len(report) > 0


def test_tolerances_are_frozen():
    tolerances = ConformanceTolerances()
    with pytest.raises(dataclasses.FrozenInstanceError):
        tolerances.dep_tvd = 1.0
