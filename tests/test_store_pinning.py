"""Pin-while-leased: live fleet runs protect their inputs from LRU."""

import json
import os
import time

import pytest

from repro.exec import ArtifactStore
from repro.exec.store import PIN_TTL_SECONDS


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=str(tmp_path / "cache"), enabled=True)


def put(store, key, payload=b"x" * 1024, age=None):
    def writer(path):
        with open(path, "wb") as handle:
            handle.write(payload)
    store.save(key, {"kind": "test"}, {"blob.bin": writer})
    if age is not None:
        stamp = time.time() - age
        os.utime(store.entry_dir(key), (stamp, stamp))


class TestPinning:
    def test_pinned_entries_survive_prune(self, store):
        put(store, "old-pinned", age=300)
        put(store, "old-loose", age=200)
        put(store, "young", age=0)
        store.pin("run-a", ["old-pinned"])
        evicted = store.prune(max_bytes=2500)
        assert evicted == ["old-loose"]
        assert store.has("old-pinned") and store.has("young")
        assert store.pin_skips == 1
        assert store.stats()["pin_skips"] == 1

    def test_unpin_restores_evictability(self, store):
        put(store, "old", age=300)
        put(store, "young", age=0)
        store.pin("run-a", ["old"])
        store.unpin("run-a")
        assert store.prune(max_bytes=1500) == ["old"]

    def test_empty_pin_list_unpins(self, store):
        put(store, "old", age=300)
        store.pin("run-a", ["old"])
        store.pin("run-a", [])
        assert store.pinned_keys() == frozenset()

    def test_pins_union_across_owners(self, store):
        store.pin("run-a", ["k1", "k2"])
        store.pin("run-b", ["k2", "k3"])
        assert store.pinned_keys() == {"k1", "k2", "k3"}
        store.unpin("run-a")
        assert store.pinned_keys() == {"k2", "k3"}

    def test_repin_replaces_owner_keys(self, store):
        store.pin("run-a", ["k1"])
        store.pin("run-a", ["k2"])
        assert store.pinned_keys() == {"k2"}

    def test_disabled_store_pins_are_noops(self, tmp_path):
        disabled = ArtifactStore(root=str(tmp_path / "off"), enabled=False)
        disabled.pin("run-a", ["k1"])
        assert disabled.pinned_keys() == frozenset()


class TestStalePins:
    def write_pin(self, store, owner, keys, pid, host, ts):
        os.makedirs(store.pins_dir, exist_ok=True)
        with open(os.path.join(store.pins_dir, f"{owner}.json"),
                  "w") as handle:
            json.dump({"owner": owner, "pid": pid, "host": host,
                       "ts": ts, "keys": keys}, handle)

    def dead_pid(self):
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        return pid

    def test_dead_owner_pin_collected(self, store):
        import socket
        self.write_pin(store, "dead", ["k1"], self.dead_pid(),
                       socket.gethostname(), time.time())
        assert store.pinned_keys() == frozenset()
        assert not os.path.exists(
            os.path.join(store.pins_dir, "dead.json"))

    def test_foreign_host_pin_honoured_until_ttl(self, store):
        self.write_pin(store, "faraway", ["k1"], 1234, "elsewhere",
                       time.time())
        assert store.pinned_keys() == {"k1"}
        self.write_pin(store, "faraway", ["k1"], 1234, "elsewhere",
                       time.time() - PIN_TTL_SECONDS - 10)
        assert store.pinned_keys() == frozenset()

    def test_corrupt_pin_file_collected(self, store):
        os.makedirs(store.pins_dir, exist_ok=True)
        path = os.path.join(store.pins_dir, "broken.json")
        with open(path, "w") as handle:
            handle.write("{nope")
        assert store.pinned_keys() == frozenset()
        assert not os.path.exists(path)


class TestFleetIntegration:
    def test_run_fleet_pins_then_unpins(self, tmp_path, monkeypatch):
        from repro.exec import default_store, reset_default_store
        from repro.fleet import Recipe, run_fleet

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_store()
        try:
            recipe = Recipe(name="pin", kernels=["crc32"],
                            pipeline_cap=20_000)
            observed = {}
            store = default_store()
            original = store.pin

            def spy(owner, keys):
                observed[owner] = list(keys)
                return original(owner, keys)

            monkeypatch.setattr(store, "pin", spy)
            from repro.fleet.run import _pin_owner
            run_dir = str(tmp_path / "run")
            run_fleet(run_dir, recipe)
            # The orchestrator pinned its pending trace key up front,
            # and the (in-process) worker pinned its live session's
            # digest/bank keys once it held the trace.
            worker_owner = f"fleet-w0-{os.getpid()}"
            assert set(observed) == {_pin_owner(run_dir), worker_owner}
            assert len(observed[_pin_owner(run_dir)]) == 1
            assert len(observed[worker_owner]) >= 3
            assert all(key.startswith("sweep-")
                       for key in observed[worker_owner])
            # ...and every pin was dropped on the way out.
            assert store.pinned_keys() == frozenset()
        finally:
            monkeypatch.undo()
            reset_default_store()
