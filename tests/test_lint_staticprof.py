"""Static profile prediction (CF210-CF215) against the real profiler.

The acceptance bar for the predictor is *bit-for-bit* agreement with
``profile_trace(run_program(clone))`` on synthesized clones — same SFG
structure (blocks, transitions, contexts), same per-op statistics —
plus a sound decline (CF210) on anything it cannot certify.
"""

import numpy as np
import pytest

from repro.core import SynthesisParameters, make_clone, profile_trace
from repro.lint import (
    StaticPredictionError,
    check_static_conformance,
    predict_profile,
)
from repro.sim import run_program


def assert_profiles_identical(predicted, dynamic):
    """Field-by-field bit-for-bit comparison of two WorkloadProfiles."""
    assert predicted.total_instructions == dynamic.total_instructions
    assert predicted.total_memory_ops == dynamic.total_memory_ops
    assert predicted.total_branches == dynamic.total_branches
    assert predicted.global_mix == dynamic.global_mix
    assert set(predicted.blocks) == set(dynamic.blocks)
    for bid, want in dynamic.blocks.items():
        got = predicted.blocks[bid]
        assert (got.visits, got.size, got.mix) == \
            (want.visits, want.size, want.mix), f"block {bid}"
        assert got.mem_pcs == want.mem_pcs
        assert got.branch_pc == want.branch_pc
    assert predicted.transitions == dynamic.transitions
    assert ({k: v.visits for k, v in predicted.contexts.items()}
            == {k: v.visits for k, v in dynamic.contexts.items()})
    assert set(predicted.branches) == set(dynamic.branches)
    for pc, want in dynamic.branches.items():
        got = predicted.branches[pc]
        assert (got.count, got.taken_rate, got.transition_rate) == \
            (want.count, want.taken_rate, want.transition_rate), \
            f"branch {pc}"
    assert set(predicted.mem_ops) == set(dynamic.mem_ops)
    for pc, want in dynamic.mem_ops.items():
        got = predicted.mem_ops[pc]
        for attribute in ("count", "is_store", "dominant_stride",
                          "coverage", "mean_stream_length",
                          "distinct_strides", "footprint_bytes",
                          "first_address", "last_address",
                          "local_fraction", "alias_of"):
            assert getattr(got, attribute) == getattr(want, attribute), \
                f"mem {pc} {attribute}"
    assert predicted.data_footprint_bytes == dynamic.data_footprint_bytes
    assert predicted.stride_coverage == dynamic.stride_coverage
    assert predicted.unique_streams == dynamic.unique_streams
    # The dependency histogram is the one tolerance-level statistic:
    # the steady-state walk deliberately folds the init/exit chains and
    # reset diversions into the common path, so it agrees to within the
    # CF212 tolerance rather than bit-for-bit.
    tvd = 0.5 * float(np.abs(
        np.asarray(predicted.dep_fractions())
        - np.asarray(dynamic.dep_fractions())).sum())
    assert tvd <= 0.15


@pytest.fixture(scope="module")
def dynamic_profile(loop_nest_clone, loop_nest_clone_trace):
    return profile_trace(loop_nest_clone_trace)


class TestPredictionExactness:
    def test_bit_for_bit_on_synthesized_clone(self, loop_nest_clone,
                                              dynamic_profile):
        prediction = predict_profile(loop_nest_clone.program)
        assert_profiles_identical(prediction.profile, dynamic_profile)

    def test_iteration_count_matches_observed(self, loop_nest_clone,
                                              loop_nest_clone_trace):
        prediction = predict_profile(loop_nest_clone.program)
        header_start = prediction.profile.blocks  # noqa: F841
        # Every steady-state block runs exactly `iterations` times.
        for bid in prediction.steady_blocks:
            assert prediction.profile.blocks[bid].visits \
                == prediction.iterations

    def test_prediction_exact_at_other_seed_and_length(self,
                                                       loop_nest_profile):
        clone = make_clone(loop_nest_profile, SynthesisParameters(
            dynamic_instructions=60_000, seed=7))
        prediction = predict_profile(clone.program)
        dynamic = profile_trace(run_program(clone.program,
                                            max_instructions=2_000_000))
        assert_profiles_identical(prediction.profile, dynamic)


class TestSoundDecline:
    def test_hand_written_kernel_declines(self, loop_nest_program):
        # Two nested loops: outside the certified clone skeleton.  The
        # predictor must refuse — a guessed profile would be unsound.
        with pytest.raises(StaticPredictionError) as excinfo:
            predict_profile(loop_nest_program)
        assert excinfo.value.reason

    def test_decline_maps_to_cf210(self, loop_nest_profile,
                                   loop_nest_program):
        from repro.core.synthesizer import CloneResult
        fake = CloneResult(program=loop_nest_program, asm_source="",
                           profile=loop_nest_profile,
                           parameters=SynthesisParameters(), stats={})
        report, prediction = check_static_conformance(fake)
        assert prediction is None
        assert "CF210" in report.codes()
        assert not report.ok  # CF210 is error severity


class TestStaticConformance:
    def test_clean_clone_passes(self, loop_nest_clone):
        report, prediction = check_static_conformance(loop_nest_clone)
        assert report.ok
        assert not report.codes()
        assert prediction is not None

    def test_divergent_clone_fails_statically(self, loop_nest_profile):
        # Sabotage a pointer cluster's advance after synthesis: the
        # memory plan says one stride, the emitted walk proves another.
        # CF214 must catch the mismatch with zero simulation.
        from repro.core.synthesizer import CloneResult
        from repro.isa import assemble
        clone = make_clone(loop_nest_profile, SynthesisParameters(
            dynamic_instructions=30_000, lint_gate="off"))
        advance = clone.stats["clusters"][0]["advance"]
        needle = f"    addi r4, r4, {advance}"
        source = clone.asm_source.replace(
            needle, f"    addi r4, r4, {advance * 2}", 1)
        assert source != clone.asm_source
        broken = CloneResult(
            program=assemble(source, name=clone.program.name),
            asm_source=source, profile=clone.profile,
            parameters=clone.parameters, stats=clone.stats)
        report, _ = check_static_conformance(broken)
        assert "CF214" in report.codes()
        assert not report.ok

    def test_severity_overrides_apply(self, loop_nest_profile,
                                      loop_nest_program):
        from repro.core.synthesizer import CloneResult
        fake = CloneResult(program=loop_nest_program, asm_source="",
                           profile=loop_nest_profile,
                           parameters=SynthesisParameters(), stats={})
        report, _ = check_static_conformance(
            fake, severity_overrides={"CF210": "info"})
        assert "CF210" in report.codes()
        assert report.ok  # demoted to info


class TestPredictionInternals:
    def test_branch_sequences_match_trace(self, loop_nest_clone,
                                          loop_nest_clone_trace):
        prediction = predict_profile(loop_nest_clone.program)
        trace = loop_nest_clone_trace
        for pc, sequence in prediction.branch_sequences.items():
            observed = trace.taken[trace.pcs == pc]
            assert np.array_equal(observed, sequence), f"branch {pc}"

    def test_memory_addresses_match_trace(self, loop_nest_clone,
                                          loop_nest_clone_trace):
        prediction = predict_profile(loop_nest_clone.program)
        trace = loop_nest_clone_trace
        pointers = {info.pointer: info for info in prediction.countdowns}
        columns_src1 = {pc: stats for pc, stats
                        in prediction.profile.mem_ops.items()}
        for pc, stats in columns_src1.items():
            observed = trace.addrs[trace.pcs == pc]
            assert int(observed[0]) == stats.first_address, f"mem {pc}"
            assert int(observed[-1]) == stats.last_address, f"mem {pc}"
        assert pointers  # the clone has verified countdown walks
