"""Sampling self-profiler: attribution, summaries, rendering."""

import time

from repro.obs.journal import configure_journal
from repro.obs.selfprof import SamplingProfiler, format_profile
from repro.obs.timing import TRACER
from repro.obs.trace import reset_trace_state


def _busy(seconds):
    deadline = time.perf_counter() + seconds
    value = 0
    while time.perf_counter() < deadline:
        value += 1
    return value


class TestSamplingProfiler:
    def test_samples_attribute_to_enclosing_span(self, tmp_path):
        configure_journal(str(tmp_path / "run"))
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        try:
            with TRACER.span("hot"):
                _busy(0.2)
        finally:
            profiler.stop()
            configure_journal(None)
            reset_trace_state()
        summary = profiler.summary()
        assert summary["samples"] > 0
        assert summary["interval_s"] == 0.001
        spans = {row["span"] for row in summary["top"]}
        assert "hot" in spans
        hot = next(row for row in summary["top"] if row["span"] == "hot")
        assert hot["function"].endswith("_busy")

    def test_without_spans_samples_fall_in_no_span_bucket(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        try:
            _busy(0.1)
        finally:
            profiler.stop()
        summary = profiler.summary()
        assert summary["samples"] > 0
        assert {row["span"] for row in summary["top"]} == {"<no span>"}

    def test_stop_is_idempotent_and_shares_sum_to_one(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        _busy(0.05)
        profiler.stop()
        profiler.stop()
        summary = profiler.summary()
        assert sum(row["share"] for row in summary["top"]) <= 1.0 + 1e-9
        assert sum(row["samples"] for row in summary["top"]) \
            <= summary["samples"]

    def test_format_profile_renders_shares(self):
        summary = {"interval_s": 0.005, "samples": 40, "top": [
            {"span": "sim.run", "function": "sim/functional.py:step",
             "samples": 30, "share": 0.75},
            {"span": "<no span>", "function": "cli.py:main",
             "samples": 10, "share": 0.25},
        ]}
        text = format_profile(summary)
        assert "40 samples" in text
        assert "75.0%" in text
        assert "sim.run" in text

    def test_format_profile_empty(self):
        text = format_profile({"interval_s": 0.005, "samples": 0,
                               "top": []})
        assert "0 samples" in text
