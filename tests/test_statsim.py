"""Tests for the statistical-simulation module (prior-art lineage)."""

import pytest

from repro.statsim import (
    StatisticalSimulator,
    statistical_ipc_estimate,
    synthesize_trace,
)
from repro.uarch import BASE_CONFIG, simulate_pipeline


class TestTraceSynthesis:
    def test_trace_length_near_target(self, loop_nest_profile):
        trace = synthesize_trace(loop_nest_profile, n_instructions=20_000)
        assert 20_000 <= len(trace) <= 21_000  # may overshoot one block

    def test_trace_is_deterministic(self, loop_nest_profile):
        a = synthesize_trace(loop_nest_profile, 10_000, seed=5)
        b = synthesize_trace(loop_nest_profile, 10_000, seed=5)
        assert (a.pcs == b.pcs).all()
        assert (a.addrs == b.addrs).all()
        assert (a.taken == b.taken).all()

    def test_seeds_differ(self, loop_nest_profile):
        a = synthesize_trace(loop_nest_profile, 10_000, seed=1)
        b = synthesize_trace(loop_nest_profile, 10_000, seed=2)
        assert not (a.pcs.shape == b.pcs.shape
                    and (a.pcs == b.pcs).all())

    def test_memory_fraction_matches_profile(self, loop_nest_profile):
        trace = synthesize_trace(loop_nest_profile, 30_000)
        summary = trace.summary()
        real_fraction = (loop_nest_profile.total_memory_ops
                         / loop_nest_profile.total_instructions)
        synthetic = summary["memory_ops"] / summary["instructions"]
        assert synthetic == pytest.approx(real_fraction, abs=0.08)

    def test_branch_fraction_matches_profile(self, loop_nest_profile):
        trace = synthesize_trace(loop_nest_profile, 30_000)
        summary = trace.summary()
        real_fraction = (loop_nest_profile.total_branches
                         / loop_nest_profile.total_instructions)
        synthetic = summary["branches"] / summary["instructions"]
        assert synthetic == pytest.approx(real_fraction, abs=0.08)

    def test_taken_rate_tracks_profile(self, loop_nest_profile):
        trace = synthesize_trace(loop_nest_profile, 30_000)
        summary = trace.summary()
        synthetic = summary["taken_branches"] / summary["branches"]
        weighted = sum(b.taken_rate * b.count
                       for b in loop_nest_profile.branches.values())
        weighted /= sum(b.count for b in loop_nest_profile.branches.values())
        assert synthetic == pytest.approx(weighted, abs=0.2)

    def test_addresses_are_strided(self, loop_nest_profile):
        trace = synthesize_trace(loop_nest_profile, 20_000)
        addresses = trace.memory_addresses()
        assert len(addresses) > 0
        assert (addresses >= 0).all()


class TestEstimation:
    def test_ipc_estimate_in_ballpark(self, loop_nest_trace,
                                      loop_nest_profile):
        real = simulate_pipeline(loop_nest_trace, BASE_CONFIG)
        estimate = statistical_ipc_estimate(loop_nest_profile, BASE_CONFIG,
                                            n_instructions=40_000)
        assert estimate == pytest.approx(real.ipc, rel=0.35)

    def test_estimate_tracks_width_direction(self, loop_nest_profile):
        simulator = StatisticalSimulator(loop_nest_profile)
        base = simulator.estimate(BASE_CONFIG, 30_000)
        wide = simulator.estimate(BASE_CONFIG.renamed("w2", width=2),
                                  30_000)
        assert wide.ipc >= base.ipc * 0.98

    def test_estimate_tracks_predictor_direction(self, loop_nest_profile):
        simulator = StatisticalSimulator(loop_nest_profile)
        base = simulator.estimate(BASE_CONFIG, 30_000)
        worse = simulator.estimate(
            BASE_CONFIG.renamed("nt", predictor="nottaken"), 30_000)
        assert worse.ipc < base.ipc
