"""Tests for the statistical flow graph and its walk (paper Sec. 3.1.1)."""

import random
from collections import Counter

import pytest

from repro.core.sfg import StatisticalFlowGraph


class TestConstruction:
    def test_occurrences_scaled(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile, target_instances=100)
        assert sum(sfg.occurrences.values()) == pytest.approx(100, abs=15)

    def test_occurrence_proportions(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile, target_instances=300)
        hottest = max(loop_nest_profile.blocks.values(),
                      key=lambda stats: stats.visits)
        assert sfg.occurrences[hottest.bid] \
            == max(sfg.occurrences.values())

    def test_every_visited_block_has_budget(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile, target_instances=50)
        for bid, stats in loop_nest_profile.blocks.items():
            if stats.visits:
                assert sfg.occurrences[bid] >= 1

    def test_transition_probabilities(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile)
        for pred, pairs in sfg.successors.items():
            total = sum(sfg.transition_probability(pred, succ)
                        for succ, _ in pairs)
            assert total == pytest.approx(1.0)

    def test_unknown_edge_probability_zero(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile)
        assert sfg.transition_probability(0, 9999) == 0.0


class TestSampling:
    def test_sample_start_respects_budget(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile, target_instances=20)
        rng = random.Random(1)
        for _ in range(200):
            bid = sfg.sample_start(rng)
            assert bid in loop_nest_profile.blocks

    def test_instantiate_decrements(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile, target_instances=20)
        bid = next(iter(sfg.occurrences))
        before = sfg.occurrences[bid]
        sfg.instantiate(bid)
        assert sfg.occurrences[bid] == before - 1

    def test_instantiate_floors_at_zero(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile, target_instances=20)
        bid = next(iter(sfg.occurrences))
        for _ in range(1000):
            sfg.instantiate(bid)
        assert sfg.occurrences[bid] == 0

    def test_exhausted(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile, target_instances=10)
        assert not sfg.exhausted()
        for bid in list(sfg.occurrences):
            for _ in range(sfg.occurrences[bid]):
                sfg.instantiate(bid)
        assert sfg.exhausted()


class TestWalk:
    def test_walk_length(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile, target_instances=150)
        sequence = sfg.walk(150, random.Random(7))
        assert len(sequence) == 150

    def test_walk_deterministic_per_seed(self, loop_nest_profile):
        a = StatisticalFlowGraph(loop_nest_profile, 100).walk(
            100, random.Random(3))
        b = StatisticalFlowGraph(loop_nest_profile, 100).walk(
            100, random.Random(3))
        assert a == b

    def test_walk_follows_real_edges_or_restarts(self, loop_nest_profile):
        sfg = StatisticalFlowGraph(loop_nest_profile, 200)
        sequence = sfg.walk(200, random.Random(5))
        real_edges = set(loop_nest_profile.transitions)
        follows = sum(1 for a, b in zip(sequence, sequence[1:])
                      if (a, b) in real_edges)
        # The vast majority of steps follow profiled edges.
        assert follows / (len(sequence) - 1) > 0.8

    def test_walk_coverage_proportional(self, loop_nest_profile):
        """The restart rule must keep every program region represented
        (the basicmath starvation bug)."""
        target = 300
        sfg = StatisticalFlowGraph(loop_nest_profile, target)
        sequence = sfg.walk(target, random.Random(11))
        counts = Counter(sequence)
        total_visits = sum(stats.visits
                           for stats in loop_nest_profile.blocks.values())
        for bid, stats in loop_nest_profile.blocks.items():
            expected = target * stats.visits / total_visits
            if expected >= 3:
                assert counts[bid] >= expected * 0.3, (
                    f"block {bid} under-sampled: {counts[bid]} vs "
                    f"{expected:.1f}")
